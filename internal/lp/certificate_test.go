package lp

import (
	"math"
	"math/rand"
	"testing"
)

// demandModel builds the shape the RET probes exercise: minimize nothing
// over x1 + x2 >= 4 with finite column capacities. Pinning x2 to [0,0]
// (the bound-flip the binary search performs) makes it infeasible.
func demandModel() (*Model, VarID, VarID, RowID) {
	m := NewModel("demand", Minimize)
	x1 := m.AddVar("x1", 0, 2, 1)
	x2 := m.AddVar("x2", 0, 3, 1)
	r := m.AddRow("demand", GE, 4)
	m.AddTerm(r, x1, 1)
	m.AddTerm(r, x2, 1)
	return m, x1, x2, r
}

func TestPointCertificateAcceptReject(t *testing.T) {
	m, _, _, _ := demandModel()
	if c := PointCertificate(m, []float64{2, 2}, 0); c == nil || !c.Feasible() {
		t.Fatal("valid point rejected")
	}
	if c := PointCertificate(m, []float64{2, 1}, 0); c != nil {
		t.Fatal("row-violating point accepted")
	}
	if c := PointCertificate(m, []float64{2, 4}, 0); c != nil {
		t.Fatal("bound-violating point accepted")
	}
	if c := PointCertificate(m, []float64{2}, 0); c != nil {
		t.Fatal("wrong-length point accepted")
	}
}

// TestCertificateBoundFlip walks both certificate directions through the
// RET bound-flip pattern: a feasible witness answers while the flipped
// bounds still admit it and declines once they do not; a Farkas ray
// answers while the pinned capacities keep its gap positive and declines
// once a reopened column could absorb it.
func TestCertificateBoundFlip(t *testing.T) {
	m, _, x2, _ := demandModel()
	sol, feasCert, err := m.SolveWithCertificate(Options{})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %v status %v", err, sol.Status)
	}
	if feasCert == nil || !feasCert.Feasible() {
		t.Fatal("optimal solve exported no feasible certificate")
	}
	if feas, ok := m.CheckFeasibleWithCertificate(feasCert); !ok || !feas {
		t.Fatalf("feasible cert on unchanged model: feas=%v ok=%v", feas, ok)
	}

	// Pin x2: now infeasible (x1 alone caps at 2 < 4). The witness uses
	// x2 > 0, so the feasible certificate must decline, not mis-answer.
	m.SetBounds(x2, 0, 0)
	if _, ok := m.CheckFeasibleWithCertificate(feasCert); ok {
		t.Fatal("feasible cert answered after its witness was pinned out")
	}
	sol2, farkas, err := m.SolveWithCertificate(Options{})
	if err != nil || sol2.Status != Infeasible {
		t.Fatalf("pinned solve: %v status %v", err, sol2.Status)
	}
	if farkas == nil || farkas.Feasible() {
		t.Fatal("infeasible solve exported no Farkas certificate")
	}
	if feas, ok := m.CheckFeasibleWithCertificate(farkas); !ok || feas {
		t.Fatalf("farkas cert on its own model: feas=%v ok=%v", feas, ok)
	}

	// Reopen x2: feasible again. The Farkas gap (4 - 2 - 3 < 0) vanishes,
	// so the ray declines; the original witness is admissible again and
	// answers feasible with no solve.
	m.SetBounds(x2, 0, 3)
	if _, ok := m.CheckFeasibleWithCertificate(farkas); ok {
		t.Fatal("farkas cert answered after the pinned column reopened")
	}
	if feas, ok := m.CheckFeasibleWithCertificate(feasCert); !ok || !feas {
		t.Fatalf("feasible cert after reopening: feas=%v ok=%v", feas, ok)
	}
}

// TestCertificateDriftedRHS models cross-epoch carry: demands drain (GE
// right-hand sides drop) between capture and check.
func TestCertificateDriftedRHS(t *testing.T) {
	m, _, x2, r := demandModel()
	_, feasCert, err := m.SolveWithCertificate(Options{})
	if err != nil || feasCert == nil {
		t.Fatalf("solve: %v cert=%v", err, feasCert)
	}
	// Draining the demand only relaxes the GE row: the witness stays valid.
	m.SetRHS(r, 1.5)
	if feas, ok := m.CheckFeasibleWithCertificate(feasCert); !ok || !feas {
		t.Fatalf("feasible cert after RHS drain: feas=%v ok=%v", feas, ok)
	}
	// Tightening past the witness's activity (x1+x2 = 4 < 4.5): decline.
	m.SetRHS(r, 4.5)
	if _, ok := m.CheckFeasibleWithCertificate(feasCert); ok {
		t.Fatal("feasible cert answered beyond its witness's activity")
	}

	// Farkas direction: capture at rhs 4 with x2 pinned (gap 2), then
	// drain. The gap is recomputed against the current RHS, so at rhs 3
	// it still certifies (gap 1) and at rhs 2 it declines (gap 0).
	m.SetRHS(r, 4)
	m.SetBounds(x2, 0, 0)
	_, farkas, err := m.SolveWithCertificate(Options{})
	if err != nil || farkas == nil || farkas.Feasible() {
		t.Fatalf("pinned solve: %v cert=%+v", err, farkas)
	}
	m.SetRHS(r, 3)
	if feas, ok := m.CheckFeasibleWithCertificate(farkas); !ok || feas {
		t.Fatalf("farkas cert at drained rhs 3: feas=%v ok=%v", feas, ok)
	}
	m.SetRHS(r, 2)
	if _, ok := m.CheckFeasibleWithCertificate(farkas); ok {
		t.Fatal("farkas cert answered once the drained demand became satisfiable")
	}
}

// TestCertificateRandomSoundness fuzzes the soundness contract: across
// random LPs and random bound flips / RHS drifts, a certificate may
// decline freely but every answer it gives must match a fresh solve.
func TestCertificateRandomSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	answered := 0
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(4)
		m := NewModel("fuzz", Minimize)
		ubs := make([]float64, n)
		vars := make([]VarID, n)
		for j := 0; j < n; j++ {
			ubs[j] = 0.5 + 2.5*rng.Float64()
			vars[j] = m.AddVar("x", 0, ubs[j], rng.Float64())
		}
		var geRows []RowID
		for k, nr := 0, 2+rng.Intn(3); k < nr; k++ {
			op := GE
			if rng.Intn(3) == 0 {
				op = LE
			}
			row := m.AddRow("r", op, 0)
			total := 0.0
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					continue
				}
				c := 0.2 + 1.8*rng.Float64()
				m.AddTerm(row, vars[j], c)
				total += c * ubs[j]
			}
			// RHS near the attainable maximum so bound flips swing the
			// verdict both ways.
			m.SetRHS(row, total*(0.4+0.8*rng.Float64()))
			if op == GE {
				geRows = append(geRows, row)
			}
		}
		_, cert, err := m.SolveWithCertificate(Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if cert == nil {
			continue
		}
		for step := 0; step < 6; step++ {
			j := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				m.SetBounds(vars[j], 0, 0) // pin, as the bisection does
			case 1:
				m.SetBounds(vars[j], 0, ubs[j]) // reopen
			case 2:
				if len(geRows) > 0 { // demand drain
					r := geRows[rng.Intn(len(geRows))]
					m.SetRHS(r, m.RHS(r)*rng.Float64())
				}
			}
			feas, ok := m.CheckFeasibleWithCertificate(cert)
			if !ok {
				continue
			}
			answered++
			sol, err := m.SolveWith(Options{})
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			truth := sol.Status == Optimal
			if sol.Status != Optimal && sol.Status != Infeasible {
				t.Fatalf("trial %d step %d: unexpected status %v", trial, step, sol.Status)
			}
			if feas != truth {
				t.Fatalf("trial %d step %d: certificate answered %v but solve says %v", trial, step, feas, sol.Status)
			}
		}
	}
	if answered == 0 {
		t.Fatal("no perturbation was ever answered by a certificate — the fuzz exercised nothing")
	}
}

// TestDevexDantzigObjectiveAgreement: pricing changes the pivot path, not
// the optimum. Across random dense problems every pricing rule must agree
// on status and, when optimal, on the objective to 1e-9.
func TestDevexDantzigObjectiveAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	optimal := 0
	for trial := 0; trial < 40; trial++ {
		c, a, b, ops := randomProblem(rng)
		base := toModel(c, a, b, ops)
		ref, err := base.SolveWith(Options{Pricing: Dantzig})
		if err != nil {
			t.Fatalf("trial %d dantzig: %v", trial, err)
		}
		for _, pr := range []struct {
			name string
			p    Pricing
		}{{"devex", Devex}, {"partial", PartialDantzig}} {
			got, err := toModel(c, a, b, ops).SolveWith(Options{Pricing: pr.p})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, pr.name, err)
			}
			if got.Status != ref.Status {
				t.Fatalf("trial %d: %s status %v, dantzig %v", trial, pr.name, got.Status, ref.Status)
			}
			if ref.Status == Optimal && math.Abs(got.Objective-ref.Objective) > 1e-9 {
				t.Fatalf("trial %d: %s objective %.15g, dantzig %.15g (diff %g)",
					trial, pr.name, got.Objective, ref.Objective, got.Objective-ref.Objective)
			}
		}
		if ref.Status == Optimal {
			optimal++
		}
	}
	if optimal == 0 {
		t.Fatal("no trial solved to optimality")
	}
}

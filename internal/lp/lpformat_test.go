package lp

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestWriteLPBasic(t *testing.T) {
	m := NewModel("t", Maximize)
	x := m.AddVar("x", 0, Inf, 3)
	y := m.AddVar("y", 1, 5, -2)
	r := m.AddRow("cap", LE, 10)
	m.AddTerm(r, x, 2)
	m.AddTerm(r, y, -1)
	var buf bytes.Buffer
	if err := m.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Maximize", "Subject To", "Bounds", "End", "cap:", "x0", "x1", "<= 10"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLPRoundTrip(t *testing.T) {
	m := NewModel("rt", Minimize)
	x := m.AddVar("x", 0, Inf, 1.5)
	y := m.AddVar("y", -2, 4, -1)
	z := m.AddVar("z", 0, Inf, 0)
	r1 := m.AddRow("r1", LE, 7)
	m.AddTerm(r1, x, 2)
	m.AddTerm(r1, y, 3)
	r2 := m.AddRow("r2", GE, -1)
	m.AddTerm(r2, y, 1)
	m.AddTerm(r2, z, -2.5)
	r3 := m.AddRow("r3", EQ, 2)
	m.AddTerm(r3, x, 1)
	m.AddTerm(r3, z, 1)

	var buf bytes.Buffer
	if err := m.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadLP(&buf)
	if err != nil {
		t.Fatalf("ReadLP: %v\ntext:\n%s", err, buf.String())
	}
	if m2.NumVars() != m.NumVars() || m2.NumRows() != m.NumRows() {
		t.Fatalf("dims %d/%d vs %d/%d", m2.NumVars(), m2.NumRows(), m.NumVars(), m.NumRows())
	}

	// Both must solve to the same optimum.
	s1, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Status != s2.Status {
		t.Fatalf("status %v vs %v", s1.Status, s2.Status)
	}
	if s1.Status == Optimal && math.Abs(s1.Objective-s2.Objective) > 1e-6 {
		t.Fatalf("objective %g vs %g", s1.Objective, s2.Objective)
	}
}

func TestLPRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	trials := 50
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		n := 1 + rng.Intn(6)
		mr := 1 + rng.Intn(6)
		sense := Minimize
		if rng.Intn(2) == 0 {
			sense = Maximize
		}
		m := NewModel("rnd", sense)
		vars := make([]VarID, n)
		for j := range vars {
			lb := float64(rng.Intn(3) - 1)
			ub := lb + float64(rng.Intn(5))
			if rng.Intn(3) == 0 {
				vars[j] = m.AddVar("v", lb, Inf, float64(rng.Intn(7)-3))
			} else {
				vars[j] = m.AddVar("v", lb, ub, float64(rng.Intn(7)-3))
			}
		}
		for i := 0; i < mr; i++ {
			op := []RelOp{LE, GE, EQ}[rng.Intn(3)]
			r := m.AddRow("", op, float64(rng.Intn(11)-2))
			for j := range vars {
				if rng.Float64() < 0.6 {
					m.AddTerm(r, vars[j], float64(rng.Intn(7)-3))
				}
			}
		}
		var buf bytes.Buffer
		if err := m.WriteLP(&buf); err != nil {
			t.Fatal(err)
		}
		text := buf.String()
		m2, err := ReadLP(strings.NewReader(text))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, text)
		}
		s1, err := m.Solve()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := m2.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if s1.Status != s2.Status {
			t.Fatalf("trial %d: status %v vs %v\n%s", trial, s1.Status, s2.Status, text)
		}
		if s1.Status == Optimal {
			if diff := math.Abs(s1.Objective - s2.Objective); diff > 1e-6*(1+math.Abs(s1.Objective)) {
				t.Fatalf("trial %d: objective %g vs %g\n%s", trial, s1.Objective, s2.Objective, text)
			}
		}
	}
}

func TestReadLPErrors(t *testing.T) {
	bad := []string{
		"",                           // empty
		"Garbage\n x0 >= 0\nEnd\n",   // line outside sections
		"Minimize\n obj: + 2\nEnd\n", // dangling coefficient
		"Minimize\n obj: + x0\nSubject To\n noRelation here\n", // missing colon/relation
		"Minimize\n obj: + x0\nSubject To\n c1: + x0 <= abc\n", // bad rhs
		"Minimize\n obj: + x0\nBounds\n x0 maybe 3\nEnd\n",     // bad bounds line
		"Minimize\n obj: + q9\nEnd\n",                          // bad variable token
	}
	for i, text := range bad {
		if _, err := ReadLP(strings.NewReader(text)); err == nil {
			t.Errorf("case %d: accepted:\n%s", i, text)
		}
	}
}

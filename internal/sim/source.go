package sim

import (
	"fmt"
	"math/rand"

	"wavesched/internal/controller"
	"wavesched/internal/job"
	"wavesched/internal/netgraph"
)

// Source produces job requests on demand, letting simulations run open
// loop (load defined by a process, not a pre-drawn list).
type Source interface {
	// Next returns the next request, or ok=false when the source is
	// exhausted. Arrivals must be non-decreasing.
	Next() (job.Job, bool)
}

// PoissonSource draws an endless Poisson request stream over a graph.
type PoissonSource struct {
	rng   *rand.Rand
	g     *netgraph.Graph
	rate  float64
	sizes [2]float64 // demand units, uniform
	win   [2]float64
	clock float64
	next  job.ID
	limit int // 0 = unlimited
	count int
}

// NewPoissonSource returns a source with the given arrival rate, demand
// range (in demand units) and window-length range.
func NewPoissonSource(g *netgraph.Graph, rate, sizeMin, sizeMax, winMin, winMax float64, seed int64) (*PoissonSource, error) {
	if g.NumNodes() < 2 {
		return nil, fmt.Errorf("sim: source needs ≥ 2 nodes")
	}
	if rate <= 0 || sizeMin <= 0 || sizeMax < sizeMin || winMin <= 0 || winMax < winMin {
		return nil, fmt.Errorf("sim: bad source parameters (rate %g, size [%g, %g], window [%g, %g])",
			rate, sizeMin, sizeMax, winMin, winMax)
	}
	return &PoissonSource{
		rng: rand.New(rand.NewSource(seed)), g: g, rate: rate,
		sizes: [2]float64{sizeMin, sizeMax}, win: [2]float64{winMin, winMax},
	}, nil
}

// Limit caps the total number of requests (0 = unlimited).
func (s *PoissonSource) Limit(n int) *PoissonSource {
	s.limit = n
	return s
}

// Next draws the next request.
func (s *PoissonSource) Next() (job.Job, bool) {
	if s.limit > 0 && s.count >= s.limit {
		return job.Job{}, false
	}
	s.count++
	s.clock += s.rng.ExpFloat64() / s.rate
	src := netgraph.NodeID(s.rng.Intn(s.g.NumNodes()))
	dst := src
	for dst == src {
		dst = netgraph.NodeID(s.rng.Intn(s.g.NumNodes()))
	}
	size := s.sizes[0] + s.rng.Float64()*(s.sizes[1]-s.sizes[0])
	win := s.win[0] + s.rng.Float64()*(s.win[1]-s.win[0])
	j := job.Job{
		ID: s.next, Arrival: s.clock,
		Src: src, Dst: dst, Size: size,
		Start: s.clock, End: s.clock + win,
	}
	s.next++
	return j, true
}

// RunSource drives the controller from a live source until maxTime (which
// must be positive for unlimited sources, or the run would never end).
// Requests arriving after maxTime are discarded.
func RunSource(ctrl *controller.Controller, src Source, maxTime float64) (*RunResult, error) {
	if ctrl.Now() != 0 {
		return nil, fmt.Errorf("sim: controller clock already at %g", ctrl.Now())
	}
	if maxTime <= 0 {
		return nil, fmt.Errorf("sim: RunSource requires a positive maxTime")
	}
	q := NewQueue()
	pump := func() bool {
		j, ok := src.Next()
		if !ok || j.Arrival > maxTime {
			return false
		}
		q.Schedule(Event{Time: j.Arrival, Kind: EventArrival, Job: j})
		return true
	}
	more := pump()
	q.Schedule(Event{Time: 0, Kind: EventEpoch})

	for {
		ev, ok := q.Next()
		if !ok {
			break
		}
		if ev.Time > maxTime {
			break
		}
		switch ev.Kind {
		case EventArrival:
			if err := ctrl.Submit(ev.Job); err != nil {
				return nil, fmt.Errorf("sim: submit job %d: %w", ev.Job.ID, err)
			}
			if more {
				more = pump() // keep exactly one future arrival queued
			}
		case EventEpoch:
			if err := ctrl.RunEpoch(); err != nil {
				return nil, err
			}
			if more || !ctrl.Idle() || q.Len() > 0 {
				q.Schedule(Event{Time: ctrl.Now(), Kind: EventEpoch})
			}
		}
	}
	records := ctrl.Records()
	return &RunResult{
		Records: records,
		Summary: controller.Summarize(records),
		Epochs:  ctrl.Epochs,
		EndTime: ctrl.Now(),
	}, nil
}

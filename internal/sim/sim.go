// Package sim provides a small discrete-event engine and drives the
// periodic network controller over a stream of job arrivals, reproducing
// the paper's operational model: requests arrive at random times and the
// controller runs AC/scheduling at every multiple of τ over the requests
// collected since the previous instant.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"wavesched/internal/controller"
	"wavesched/internal/job"
	"wavesched/internal/netgraph"
	"wavesched/internal/telemetry"
)

// Package-level instruments on the default telemetry registry.
var (
	telQueueDepth = telemetry.Default().Gauge("sim_event_queue_depth",
		"Events pending in the discrete-event queue.")
	telVirtualTime = telemetry.Default().Gauge("sim_virtual_time",
		"Virtual time of the most recently dispatched event.")
	telArrivals = telemetry.Default().Counter("sim_arrival_events_total",
		"Job-arrival events dispatched.")
	telEpochEvents = telemetry.Default().Counter("sim_epoch_events_total",
		"Epoch events dispatched to the controller.")
	telLinkEvents = telemetry.Default().Counter("sim_link_events_total",
		"Link failure/repair events dispatched to the controller.")
)

// EventKind discriminates event types.
type EventKind int

// Event kinds. New kinds must be appended so the values stay stable.
const (
	// EventArrival delivers a job request to the controller.
	EventArrival EventKind = iota
	// EventEpoch triggers one AC/scheduling run.
	EventEpoch
	// EventLinkDown fails a link.
	EventLinkDown
	// EventLinkUp repairs a link.
	EventLinkUp
)

// Event is one timed occurrence.
type Event struct {
	Time float64
	Kind EventKind
	Job  job.Job         // for EventArrival
	Edge netgraph.EdgeID // for EventLinkDown/EventLinkUp
	seq  int             // tie-break for deterministic ordering
}

// kindRank orders same-instant events: arrivals at exactly kτ are
// collected by the epoch at kτ, per the paper's "(k−1)τ < A ≤ kτ"
// convention, and link state changes apply before the epoch replans.
func kindRank(k EventKind) int {
	switch k {
	case EventArrival:
		return 0
	case EventLinkDown, EventLinkUp:
		return 1
	default: // EventEpoch
		return 2
	}
}

// eventQueue is a binary min-heap over (Time, kind rank, seq).
type eventQueue []Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].Time != q[j].Time {
		return q[i].Time < q[j].Time
	}
	if ri, rj := kindRank(q[i].Kind), kindRank(q[j].Kind); ri != rj {
		return ri < rj
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(Event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Queue is a deterministic discrete-event queue.
type Queue struct {
	q   eventQueue
	seq int
}

// NewQueue returns an empty queue.
func NewQueue() *Queue { return &Queue{} }

// Schedule adds an event.
func (s *Queue) Schedule(e Event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.q, e)
}

// Next pops the earliest event; ok is false when the queue is empty.
func (s *Queue) Next() (Event, bool) {
	if len(s.q) == 0 {
		return Event{}, false
	}
	return heap.Pop(&s.q).(Event), true
}

// Len returns the number of queued events.
func (s *Queue) Len() int { return len(s.q) }

// RunResult is the outcome of a simulation run.
type RunResult struct {
	Records     []controller.Record
	Summary     controller.Summary
	Epochs      int
	EndTime     float64
	Disruptions []controller.Disruption
}

// Run feeds the jobs (by arrival time) into the controller and executes
// epochs until all work drains or maxTime passes. The controller must be
// freshly constructed (clock at 0).
func Run(ctrl *controller.Controller, jobs []job.Job, maxTime float64) (*RunResult, error) {
	return RunWithFailures(ctrl, jobs, nil, maxTime)
}

// RunWithFailures is Run with a link failure/repair trace injected into
// the event stream. Link events at exactly kτ apply before the epoch at
// kτ, so the controller replans on the updated topology.
func RunWithFailures(ctrl *controller.Controller, jobs []job.Job, failures []LinkEvent, maxTime float64) (*RunResult, error) {
	if ctrl.Now() != 0 {
		return nil, fmt.Errorf("sim: controller clock already at %g", ctrl.Now())
	}
	// The whole run is one root span; the controller's per-epoch spans
	// nest under their own per-epoch trace IDs, and driver-level link
	// events are stamped into the same stream so a trace viewer shows
	// what the controller reacted to.
	tr := ctrl.Tracer()
	runSpan := tr.Start("sim.run")
	runEnded := false
	defer func() {
		if !runEnded {
			runSpan.End(telemetry.KV("error", true))
		}
	}()
	ordered := append([]job.Job(nil), jobs...)
	sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].Arrival < ordered[b].Arrival })

	q := NewQueue()
	for _, j := range ordered {
		q.Schedule(Event{Time: j.Arrival, Kind: EventArrival, Job: j})
	}
	for _, le := range failures {
		kind := EventLinkDown
		if le.Up {
			kind = EventLinkUp
		}
		q.Schedule(Event{Time: le.Time, Kind: kind, Edge: le.Edge})
	}

	// Epoch events are scheduled lazily: one at a time, so the run stops
	// as soon as the system drains. Only undelivered arrivals (not queued
	// link events) keep the epoch chain alive.
	pendingArrivals := len(ordered)
	tau := nextEpochAfter(ctrl)
	q.Schedule(Event{Time: tau, Kind: EventEpoch})

	for {
		ev, ok := q.Next()
		if !ok {
			break
		}
		if maxTime > 0 && ev.Time > maxTime {
			break
		}
		telQueueDepth.Set(float64(q.Len()))
		telVirtualTime.Set(ev.Time)
		switch ev.Kind {
		case EventArrival:
			telArrivals.Inc()
			pendingArrivals--
			if err := ctrl.Submit(ev.Job); err != nil {
				// A dead-window arrival (deadline behind the epoch clock)
				// already produced its rejected record inside Submit; the
				// run goes on.
				if !errors.Is(err, controller.ErrTooLate) {
					return nil, fmt.Errorf("sim: submit job %d: %w", ev.Job.ID, err)
				}
			}
		case EventLinkDown:
			telLinkEvents.Inc()
			tr.Event("sim.link_down", telemetry.KV("edge", int(ev.Edge)), telemetry.KV("t", ev.Time))
			if err := ctrl.LinkDown(ev.Edge, ev.Time); err != nil {
				return nil, fmt.Errorf("sim: link down %d at t=%g: %w", ev.Edge, ev.Time, err)
			}
		case EventLinkUp:
			telLinkEvents.Inc()
			tr.Event("sim.link_up", telemetry.KV("edge", int(ev.Edge)), telemetry.KV("t", ev.Time))
			if err := ctrl.LinkUp(ev.Edge, ev.Time); err != nil {
				return nil, fmt.Errorf("sim: link up %d at t=%g: %w", ev.Edge, ev.Time, err)
			}
		case EventEpoch:
			telEpochEvents.Inc()
			if err := ctrl.RunEpoch(); err != nil {
				return nil, err
			}
			// Keep ticking while work remains (in the controller or still
			// queued as future arrivals).
			if !ctrl.Idle() || pendingArrivals > 0 {
				q.Schedule(Event{Time: nextEpochAfter(ctrl), Kind: EventEpoch})
			}
		}
	}

	records := ctrl.Records()
	runEnded = true
	runSpan.End(
		telemetry.KV("epochs", ctrl.Epochs),
		telemetry.KV("end_t", ctrl.Now()),
		telemetry.KV("records", len(records)),
		telemetry.KV("disruptions", len(ctrl.Disruptions())),
	)
	return &RunResult{
		Records:     records,
		Summary:     controller.Summarize(records),
		Epochs:      ctrl.Epochs,
		EndTime:     ctrl.Now(),
		Disruptions: ctrl.Disruptions(),
	}, nil
}

// nextEpochAfter returns the controller's next scheduling instant. The
// controller advances its own clock by τ per epoch, so the next epoch
// fires at the current clock value.
func nextEpochAfter(ctrl *controller.Controller) float64 {
	return ctrl.Now()
}

package sim

import (
	"bytes"
	"reflect"
	"testing"

	"wavesched/internal/controller"
	"wavesched/internal/job"
	"wavesched/internal/netgraph"
)

func TestGenerateFailuresDeterministic(t *testing.T) {
	g := netgraph.Line(4, 2, 10)
	cfg := FailureConfig{MTBF: 5, MTTR: 1, Seed: 42, MaxTime: 100}
	a, err := GenerateFailures(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFailures(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different traces")
	}
	if len(a) == 0 {
		t.Fatal("MTBF 5 over 100 time units on 6 edges produced no failures")
	}
	for i := 1; i < len(a); i++ {
		if a[i].Time < a[i-1].Time {
			t.Fatalf("trace not time-sorted at %d: %+v", i, a[i-1:i+1])
		}
	}
	// Per edge, events alternate down/up starting with a failure.
	last := map[netgraph.EdgeID]bool{} // last state seen: true = up
	seen := map[netgraph.EdgeID]bool{}
	for _, ev := range a {
		if !seen[ev.Edge] {
			if ev.Up {
				t.Fatalf("edge %d starts with a repair", ev.Edge)
			}
			seen[ev.Edge] = true
		} else if last[ev.Edge] == ev.Up {
			t.Fatalf("edge %d has consecutive %v events", ev.Edge, ev.Up)
		}
		last[ev.Edge] = ev.Up
	}

	c, err := GenerateFailures(g, FailureConfig{MTBF: 5, MTTR: 1, Seed: 43, MaxTime: 100})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical traces")
	}

	for _, bad := range []FailureConfig{
		{MTBF: 0, MTTR: 1, MaxTime: 10},
		{MTBF: 1, MTTR: -1, MaxTime: 10},
		{MTBF: 1, MTTR: 1, MaxTime: 0},
	} {
		if _, err := GenerateFailures(g, bad); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestLinkTraceRoundTrip(t *testing.T) {
	in := []LinkEvent{
		{Time: 1.5, Edge: 0, Up: false},
		{Time: 2.25, Edge: 0, Up: true},
		{Time: 3, Edge: 4, Up: false},
	}
	var buf bytes.Buffer
	if err := WriteLinkTrace(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadLinkTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}

	if _, err := ReadLinkTrace(bytes.NewReader([]byte(`[{"time": -1, "edge": 0}]`))); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := ReadLinkTrace(bytes.NewReader([]byte(`[{"time": 1, "edge": -2}]`))); err == nil {
		t.Error("negative edge accepted")
	}
	if _, err := ReadLinkTrace(bytes.NewReader([]byte(`{not json`))); err == nil {
		t.Error("malformed trace accepted")
	}
	// Out-of-order traces are sorted on read.
	got, err := ReadLinkTrace(bytes.NewReader([]byte(`[{"time": 5, "edge": 1}, {"time": 2, "edge": 0}]`)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Time != 2 {
		t.Errorf("trace not sorted on read: %+v", got)
	}
}

func TestEventOrderingLinkBeforeEpoch(t *testing.T) {
	q := NewQueue()
	q.Schedule(Event{Time: 2, Kind: EventEpoch})
	q.Schedule(Event{Time: 2, Kind: EventLinkUp, Edge: 1})
	q.Schedule(Event{Time: 2, Kind: EventLinkDown, Edge: 0})
	q.Schedule(Event{Time: 2, Kind: EventArrival})
	want := []EventKind{EventArrival, EventLinkUp, EventLinkDown, EventEpoch}
	for i, k := range want {
		ev, ok := q.Next()
		if !ok || ev.Kind != k {
			t.Fatalf("event %d: got kind %d (ok=%v), want %d", i, ev.Kind, ok, k)
		}
	}
}

// An empty (but non-nil) failure trace must behave exactly like Run.
func TestRunWithEmptyTraceMatchesRun(t *testing.T) {
	g := netgraph.Line(3, 2, 10)
	jobs := []job.Job{
		{ID: 1, Arrival: 0, Src: 0, Dst: 2, Size: 4, Start: 0, End: 6},
		{ID: 2, Arrival: 1.2, Src: 2, Dst: 0, Size: 3, Start: 1.2, End: 8},
	}
	mk := func() *controller.Controller {
		c, err := controller.New(g, controller.Config{Tau: 2, SliceLen: 1, K: 2})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, err := Run(mk(), jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWithFailures(mk(), jobs, []LinkEvent{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("empty trace diverged from Run:\n%+v\nvs\n%+v", a, b)
	}
}

// A failure trace that severs the only route mid-run drops the in-flight
// job and the repair lets later arrivals through.
func TestRunWithFailuresDropAndRecover(t *testing.T) {
	g := netgraph.Line(2, 2, 10)
	jobs := []job.Job{
		{ID: 1, Arrival: 0, Src: 0, Dst: 1, Size: 8, Start: 0, End: 4},
		{ID: 2, Arrival: 4.5, Src: 0, Dst: 1, Size: 2, Start: 4.5, End: 10},
	}
	trace := []LinkEvent{
		{Time: 1.5, Edge: 0, Up: false},
		{Time: 3.5, Edge: 0, Up: true},
	}
	c, err := controller.New(g, controller.Config{Tau: 1, SliceLen: 1, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWithFailures(c, jobs, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Total != 2 {
		t.Fatalf("summary %+v, want 2 jobs accounted", res.Summary)
	}
	byID := map[job.ID]controller.Record{}
	for _, r := range res.Records {
		byID[r.Job.ID] = r
	}
	if r := byID[1]; !r.Disrupted || r.Completed {
		t.Errorf("job 1 %+v: want dropped by the failure", r)
	}
	if r := byID[2]; !r.Completed || !r.MetDeadline {
		t.Errorf("job 2 %+v: want completed after the repair", r)
	}
	if len(res.Disruptions) != 1 || res.Disruptions[0].Outcome != controller.DisruptedDropped {
		t.Errorf("disruptions %+v, want one drop", res.Disruptions)
	}
	if res.Summary.Disrupted != 1 {
		t.Errorf("summary disrupted = %d, want 1", res.Summary.Disrupted)
	}
}

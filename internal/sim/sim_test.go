package sim

import (
	"math"
	"testing"

	"wavesched/internal/controller"
	"wavesched/internal/job"
	"wavesched/internal/netgraph"
	"wavesched/internal/workload"
)

func TestQueueOrdering(t *testing.T) {
	q := NewQueue()
	q.Schedule(Event{Time: 3, Kind: EventEpoch})
	q.Schedule(Event{Time: 1, Kind: EventEpoch})
	q.Schedule(Event{Time: 2, Kind: EventArrival})
	q.Schedule(Event{Time: 1, Kind: EventArrival}) // same time as epoch: arrival first
	times := []float64{}
	kinds := []EventKind{}
	for {
		e, ok := q.Next()
		if !ok {
			break
		}
		times = append(times, e.Time)
		kinds = append(kinds, e.Kind)
	}
	want := []float64{1, 1, 2, 3}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v", times)
		}
	}
	if kinds[0] != EventArrival || kinds[1] != EventEpoch {
		t.Errorf("same-time ordering: %v", kinds)
	}
	if _, ok := q.Next(); ok {
		t.Error("empty queue returned an event")
	}
	if q.Len() != 0 {
		t.Error("Len after drain")
	}
}

func TestQueueFIFOWithinTies(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 5; i++ {
		q.Schedule(Event{Time: 1, Kind: EventArrival, Job: job.Job{ID: job.ID(i)}})
	}
	for i := 0; i < 5; i++ {
		e, _ := q.Next()
		if e.Job.ID != job.ID(i) {
			t.Fatalf("tie order broken at %d: got %d", i, e.Job.ID)
		}
	}
}

func TestRunSingleJob(t *testing.T) {
	g := netgraph.Line(2, 2, 10)
	ctrl, err := controller.New(g, controller.Config{Tau: 1, SliceLen: 1, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	jobs := []job.Job{{ID: 1, Src: 0, Dst: 1, Size: 4, Start: 0, End: 4}}
	res, err := Run(ctrl, jobs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Completed != 1 || res.Summary.MetDeadline != 1 {
		t.Fatalf("summary %+v", res.Summary)
	}
	if math.Abs(res.Summary.Delivered-4) > 1e-9 {
		t.Errorf("delivered %g", res.Summary.Delivered)
	}
	if res.Epochs == 0 {
		t.Error("no epochs ran")
	}
}

func TestRunStaggeredArrivals(t *testing.T) {
	g := netgraph.Ring(4, 2, 10)
	ctrl, err := controller.New(g, controller.Config{Tau: 1, SliceLen: 1, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	jobs := []job.Job{
		{ID: 1, Arrival: 0, Src: 0, Dst: 2, Size: 2, Start: 0, End: 5},
		{ID: 2, Arrival: 1.5, Src: 1, Dst: 3, Size: 2, Start: 2, End: 7},
		{ID: 3, Arrival: 3.2, Src: 2, Dst: 0, Size: 2, Start: 3.5, End: 9},
	}
	res, err := Run(ctrl, jobs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Total != 3 || res.Summary.Completed != 3 {
		t.Fatalf("summary %+v", res.Summary)
	}
	if res.Summary.MetDeadline != 3 {
		t.Errorf("deadlines met %d, want 3", res.Summary.MetDeadline)
	}
}

func TestRunPoissonWorkload(t *testing.T) {
	g, err := netgraph.Waxman(netgraph.WaxmanConfig{Nodes: 10, LinkPairs: 20, Wavelengths: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := workload.Generate(g, workload.Config{
		Jobs: 12, Seed: 9, ArrivalRate: 1, GBToDemand: 0.05,
		MinWindow: 4, MaxWindow: 8, StartSpread: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.New(g, controller.Config{Tau: 2, SliceLen: 1, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ctrl, jobs, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Total != 12 {
		t.Fatalf("total %d, want 12", res.Summary.Total)
	}
	// Under light load with multipath, everything should complete.
	if res.Summary.Completed == 0 {
		t.Error("nothing completed")
	}
	if res.Summary.Delivered <= 0 {
		t.Error("nothing delivered")
	}
}

func TestRunRejectsUsedController(t *testing.T) {
	g := netgraph.Line(2, 2, 10)
	ctrl, err := controller.New(g, controller.Config{Tau: 1, SliceLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ctrl, nil, 10); err == nil {
		t.Error("used controller accepted")
	}
}

func TestRunMaxTimeCutoff(t *testing.T) {
	g := netgraph.Line(2, 1, 10)
	ctrl, err := controller.New(g, controller.Config{Tau: 1, SliceLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Arrival beyond the cutoff: nothing happens.
	jobs := []job.Job{{ID: 1, Arrival: 50, Src: 0, Dst: 1, Size: 1, Start: 50, End: 55}}
	res, err := Run(ctrl, jobs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Total != 0 {
		t.Errorf("records %d, want 0 before cutoff", res.Summary.Total)
	}
}

func TestPoissonSource(t *testing.T) {
	g := netgraph.Ring(6, 2, 10)
	src, err := NewPoissonSource(g, 2, 1, 5, 4, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	src.Limit(50)
	prev := 0.0
	n := 0
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		n++
		if j.Arrival < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = j.Arrival
		if err := j.Validate(); err != nil {
			t.Fatalf("invalid job: %v", err)
		}
		if j.Size < 1 || j.Size > 5 {
			t.Fatalf("size %g", j.Size)
		}
	}
	if n != 50 {
		t.Fatalf("drew %d jobs, want 50", n)
	}
}

func TestPoissonSourceValidation(t *testing.T) {
	g := netgraph.Ring(4, 1, 1)
	if _, err := NewPoissonSource(g, 0, 1, 2, 1, 2, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewPoissonSource(g, 1, 2, 1, 1, 2, 1); err == nil {
		t.Error("inverted sizes accepted")
	}
	one := netgraph.New("one")
	one.AddNode("a", 0, 0)
	if _, err := NewPoissonSource(one, 1, 1, 2, 1, 2, 1); err == nil {
		t.Error("1-node graph accepted")
	}
}

func TestRunSourceLiveLoad(t *testing.T) {
	g := netgraph.Ring(6, 3, 10)
	ctrl, err := controller.New(g, controller.Config{Tau: 2, SliceLen: 1, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewPoissonSource(g, 0.5, 0.5, 2, 6, 10, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSource(ctrl, src, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Total == 0 {
		t.Fatal("no jobs processed from the live source")
	}
	if res.Summary.Completed == 0 {
		t.Error("nothing completed under light load")
	}
	if res.EndTime > 40+2+1e-9 {
		t.Errorf("ran past maxTime: %g", res.EndTime)
	}
	// Unusable parameters.
	if _, err := RunSource(ctrl, src, 10); err == nil {
		t.Error("used controller accepted")
	}
	ctrl2, _ := controller.New(g, controller.Config{Tau: 1, SliceLen: 1})
	if _, err := RunSource(ctrl2, src, 0); err == nil {
		t.Error("zero maxTime accepted")
	}
}

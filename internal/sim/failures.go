package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"wavesched/internal/netgraph"
)

// LinkEvent is one link state change in a failure trace.
type LinkEvent struct {
	Time float64         `json:"time"`
	Edge netgraph.EdgeID `json:"edge"`
	Up   bool            `json:"up"`
}

// FailureConfig parameterizes the synthetic failure process: every edge
// fails and repairs independently as an alternating renewal process with
// exponential up-times (mean MTBF) and down-times (mean MTTR).
type FailureConfig struct {
	MTBF    float64 // mean time between failures (up-time), > 0
	MTTR    float64 // mean time to repair (down-time), > 0
	Seed    int64   // RNG seed; equal seeds give equal traces
	MaxTime float64 // generate events in [0, MaxTime), > 0
}

// GenerateFailures draws a deterministic failure/repair trace over the
// graph's edges, sorted by time (stable in edge order for ties). Every
// down event before MaxTime is paired with its repair when the repair
// also falls before MaxTime; a trailing failure may be left unrepaired.
func GenerateFailures(g *netgraph.Graph, cfg FailureConfig) ([]LinkEvent, error) {
	if cfg.MTBF <= 0 {
		return nil, fmt.Errorf("sim: MTBF must be positive, got %g", cfg.MTBF)
	}
	if cfg.MTTR <= 0 {
		return nil, fmt.Errorf("sim: MTTR must be positive, got %g", cfg.MTTR)
	}
	if cfg.MaxTime <= 0 {
		return nil, fmt.Errorf("sim: MaxTime must be positive, got %g", cfg.MaxTime)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var evs []LinkEvent
	for e := 0; e < g.NumEdges(); e++ {
		t := rng.ExpFloat64() * cfg.MTBF
		for t < cfg.MaxTime {
			evs = append(evs, LinkEvent{Time: t, Edge: netgraph.EdgeID(e), Up: false})
			up := t + rng.ExpFloat64()*cfg.MTTR
			if up >= cfg.MaxTime {
				break
			}
			evs = append(evs, LinkEvent{Time: up, Edge: netgraph.EdgeID(e), Up: true})
			t = up + rng.ExpFloat64()*cfg.MTBF
		}
	}
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].Time < evs[b].Time })
	return evs, nil
}

// WriteLinkTrace writes the trace as a JSON array, one event per line.
func WriteLinkTrace(w io.Writer, evs []LinkEvent) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(evs)
}

// ReadLinkTrace parses a JSON failure trace, validates it, and returns
// the events sorted by time (stable).
func ReadLinkTrace(r io.Reader) ([]LinkEvent, error) {
	var evs []LinkEvent
	if err := json.NewDecoder(r).Decode(&evs); err != nil {
		return nil, fmt.Errorf("sim: parse link trace: %w", err)
	}
	for i, ev := range evs {
		if ev.Time < 0 {
			return nil, fmt.Errorf("sim: link trace event %d has negative time %g", i, ev.Time)
		}
		if ev.Edge < 0 {
			return nil, fmt.Errorf("sim: link trace event %d has negative edge %d", i, ev.Edge)
		}
	}
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].Time < evs[b].Time })
	return evs, nil
}

package paths

import (
	"fmt"
	"testing"

	"wavesched/internal/netgraph"
)

func benchGraph(b *testing.B, nodes int) *netgraph.Graph {
	b.Helper()
	g, err := netgraph.Waxman(netgraph.WaxmanConfig{
		Nodes: nodes, LinkPairs: 2 * nodes, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkDijkstra(b *testing.B) {
	for _, n := range []int{50, 200, 400} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			g := benchGraph(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := Shortest(g, 0, netgraph.NodeID(n-1), UnitCost, nil, nil); !ok {
					b.Fatal("no path")
				}
			}
		})
	}
}

func BenchmarkYenKShortest(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			g := benchGraph(b, 100)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ps := KShortest(g, 0, 99, k, UnitCost); len(ps) == 0 {
					b.Fatal("no paths")
				}
			}
		})
	}
}

func BenchmarkEdgeDisjoint(b *testing.B) {
	g := benchGraph(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ps := EdgeDisjoint(g, 0, 99, 4, UnitCost); len(ps) == 0 {
			b.Fatal("no paths")
		}
	}
}

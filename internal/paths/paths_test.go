package paths

import (
	"math"
	"testing"

	"wavesched/internal/netgraph"
)

func TestShortestOnLine(t *testing.T) {
	g := netgraph.Line(5, 1, 1)
	p, ok := Shortest(g, 0, 4, UnitCost, nil, nil)
	if !ok {
		t.Fatal("no path found")
	}
	if p.Hops() != 4 {
		t.Errorf("hops = %d, want 4", p.Hops())
	}
	if p.Cost != 4 {
		t.Errorf("cost = %g, want 4", p.Cost)
	}
	if p.Nodes[0] != 0 || p.Nodes[len(p.Nodes)-1] != 4 {
		t.Errorf("endpoints %v", p.Nodes)
	}
	if !p.Loopless() {
		t.Error("line path has a loop")
	}
}

func TestShortestUnreachable(t *testing.T) {
	g := netgraph.New("iso")
	a := g.AddNode("a", 0, 0)
	b := g.AddNode("b", 1, 1)
	if _, ok := Shortest(g, a, b, UnitCost, nil, nil); ok {
		t.Error("found path in disconnected graph")
	}
}

func TestShortestBans(t *testing.T) {
	g := netgraph.Ring(4, 1, 1)
	// Ban the direct edge 0→1; the path must go the long way.
	var direct netgraph.EdgeID = -1
	for _, eid := range g.Out(0) {
		if g.Edge(eid).To == 1 {
			direct = eid
		}
	}
	if direct < 0 {
		t.Fatal("no direct edge found")
	}
	p, ok := Shortest(g, 0, 1, UnitCost, map[netgraph.EdgeID]bool{direct: true}, nil)
	if !ok {
		t.Fatal("no alternative path")
	}
	if p.Hops() != 3 {
		t.Errorf("hops = %d, want 3 (around the ring)", p.Hops())
	}
	// Banning an intermediate node cuts the detour too.
	_, ok = Shortest(g, 0, 1, UnitCost,
		map[netgraph.EdgeID]bool{direct: true},
		map[netgraph.NodeID]bool{2: true})
	if ok {
		t.Error("path found despite banned node")
	}
	// Banned source or destination.
	if _, ok := Shortest(g, 0, 1, UnitCost, nil, map[netgraph.NodeID]bool{0: true}); ok {
		t.Error("banned source still routed")
	}
}

func TestKShortestRing(t *testing.T) {
	g := netgraph.Ring(6, 1, 1)
	ps := KShortest(g, 0, 3, 5, UnitCost)
	// A 6-ring has exactly two loopless paths between opposite nodes.
	if len(ps) != 2 {
		t.Fatalf("got %d paths, want 2", len(ps))
	}
	if ps[0].Hops() != 3 || ps[1].Hops() != 3 {
		t.Errorf("hops = %d, %d, want 3, 3", ps[0].Hops(), ps[1].Hops())
	}
	for _, p := range ps {
		if !p.Loopless() {
			t.Error("loopy path returned")
		}
	}
	if ps[0].Key() == ps[1].Key() {
		t.Error("duplicate paths")
	}
}

func TestKShortestGrid(t *testing.T) {
	g := netgraph.Grid(3, 3, 1, 1)
	ps := KShortest(g, 0, 8, 6, UnitCost)
	if len(ps) != 6 {
		t.Fatalf("got %d paths, want 6 shortest grid paths", len(ps))
	}
	// Costs must be non-decreasing; corner-to-corner shortest is 4 hops.
	prev := 0.0
	for i, p := range ps {
		if p.Cost < prev-1e-12 {
			t.Errorf("path %d cost %g < previous %g", i, p.Cost, prev)
		}
		prev = p.Cost
		if !p.Loopless() {
			t.Errorf("path %d has a loop", i)
		}
		if p.Nodes[0] != 0 || p.Nodes[len(p.Nodes)-1] != 8 {
			t.Errorf("path %d endpoints wrong", i)
		}
	}
	if ps[0].Hops() != 4 {
		t.Errorf("shortest corner path %d hops, want 4", ps[0].Hops())
	}
	// All six 4-hop monotone paths exist in a 3×3 grid.
	for i, p := range ps {
		if p.Hops() != 4 {
			t.Errorf("path %d: %d hops, want 4", i, p.Hops())
		}
	}
}

func TestKShortestEdgeCases(t *testing.T) {
	g := netgraph.Line(3, 1, 1)
	if ps := KShortest(g, 0, 0, 3, UnitCost); ps != nil {
		t.Error("src == dst should return nil")
	}
	if ps := KShortest(g, 0, 2, 0, UnitCost); ps != nil {
		t.Error("k = 0 should return nil")
	}
	ps := KShortest(g, 0, 2, 10, UnitCost)
	if len(ps) != 1 {
		t.Errorf("line has exactly 1 loopless path, got %d", len(ps))
	}
	// Unreachable.
	iso := netgraph.New("iso")
	a := iso.AddNode("", 0, 0)
	b := iso.AddNode("", 1, 1)
	if ps := KShortest(iso, a, b, 3, UnitCost); ps != nil {
		t.Error("unreachable pair returned paths")
	}
}

func TestDistanceCost(t *testing.T) {
	g := netgraph.New("tri")
	a := g.AddNode("a", 0, 0)
	b := g.AddNode("b", 10, 0)
	c := g.AddNode("c", 1, 1)
	if err := g.AddPair(a, b, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPair(a, c, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPair(c, b, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Unit cost prefers the direct a→b hop; distance cost compares lengths.
	direct, _ := Shortest(g, a, b, UnitCost, nil, nil)
	if direct.Hops() != 1 {
		t.Errorf("unit-cost path hops = %d", direct.Hops())
	}
	dc := DistanceCost(g)
	dist, _ := Shortest(g, a, b, dc, nil, nil)
	// direct = 10; via c = √2 + √82 ≈ 10.47, so direct still wins.
	if dist.Hops() != 1 {
		t.Errorf("distance-cost path hops = %d", dist.Hops())
	}
	if math.Abs(dist.Cost-10) > 1e-6 {
		t.Errorf("distance cost %g, want ≈10", dist.Cost)
	}
}

func TestPathClone(t *testing.T) {
	g := netgraph.Line(3, 1, 1)
	p, _ := Shortest(g, 0, 2, UnitCost, nil, nil)
	q := p.Clone()
	q.Edges[0] = 99
	q.Nodes[0] = 99
	if p.Edges[0] == 99 || p.Nodes[0] == 99 {
		t.Error("Clone shares storage")
	}
}

func TestYenAgainstExhaustiveOnWaxman(t *testing.T) {
	// Property check: on a small random graph, Yen's first path matches
	// Dijkstra and each successive path is no shorter than the previous.
	g, err := netgraph.Waxman(netgraph.WaxmanConfig{Nodes: 12, LinkPairs: 24, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for src := netgraph.NodeID(0); src < 4; src++ {
		for dst := netgraph.NodeID(8); dst < 12; dst++ {
			if src == dst {
				continue
			}
			ps := KShortest(g, src, dst, 8, UnitCost)
			if len(ps) == 0 {
				t.Fatalf("%d->%d: no paths in connected graph", src, dst)
			}
			sp, _ := Shortest(g, src, dst, UnitCost, nil, nil)
			if math.Abs(ps[0].Cost-sp.Cost) > 1e-9 {
				t.Errorf("%d->%d: first Yen path cost %g != Dijkstra %g", src, dst, ps[0].Cost, sp.Cost)
			}
			seen := map[string]bool{}
			for i, p := range ps {
				if i > 0 && p.Cost < ps[i-1].Cost-1e-9 {
					t.Errorf("%d->%d: costs decrease at %d", src, dst, i)
				}
				if !p.Loopless() {
					t.Errorf("%d->%d: path %d loops", src, dst, i)
				}
				if seen[p.Key()] {
					t.Errorf("%d->%d: duplicate path %d", src, dst, i)
				}
				seen[p.Key()] = true
				// Path validity: consecutive edges chain src→dst.
				at := src
				for _, eid := range p.Edges {
					e := g.Edge(eid)
					if e.From != at {
						t.Fatalf("%d->%d: path %d broken chain", src, dst, i)
					}
					at = e.To
				}
				if at != dst {
					t.Fatalf("%d->%d: path %d ends at %d", src, dst, i, at)
				}
			}
		}
	}
}

func TestEdgeDisjoint(t *testing.T) {
	// A 6-ring has exactly two edge-disjoint paths between opposite nodes.
	g := netgraph.Ring(6, 1, 1)
	ps := EdgeDisjoint(g, 0, 3, 5, UnitCost)
	if len(ps) != 2 {
		t.Fatalf("got %d disjoint paths, want 2", len(ps))
	}
	if !Disjoint(ps) {
		t.Error("paths share an edge")
	}
	// Grid corner-to-corner: at least 2 disjoint paths exist.
	grid := netgraph.Grid(3, 3, 1, 1)
	gp := EdgeDisjoint(grid, 0, 8, 4, UnitCost)
	if len(gp) < 2 {
		t.Errorf("grid: got %d disjoint paths", len(gp))
	}
	if !Disjoint(gp) {
		t.Error("grid paths share an edge")
	}
	// Degenerate inputs.
	if EdgeDisjoint(g, 0, 0, 3, UnitCost) != nil {
		t.Error("src == dst")
	}
	if EdgeDisjoint(g, 0, 3, 0, UnitCost) != nil {
		t.Error("k = 0")
	}
}

func TestDisjointDetectsSharing(t *testing.T) {
	g := netgraph.Ring(6, 1, 1)
	ps := KShortest(g, 0, 2, 2, UnitCost)
	if len(ps) < 2 {
		t.Skip("need 2 paths")
	}
	// Yen's 2nd-shortest from 0 to 2 on a ring shares no edges with the
	// first (it goes the other way), so construct an overlapping pair
	// manually.
	dup := []Path{ps[0], ps[0]}
	if Disjoint(dup) {
		t.Error("duplicate paths reported disjoint")
	}
}

func TestKShortestAvoiding(t *testing.T) {
	// Ring 0..3: clockwise 0->1->2 and counter-clockwise 0->3->2 both
	// reach node 2. Avoiding the first clockwise edge leaves only the
	// counter-clockwise route.
	g := netgraph.Ring(4, 1, 1)
	var e01 netgraph.EdgeID = -1
	for _, e := range g.Edges() {
		if e.From == 0 && e.To == 1 {
			e01 = e.ID
		}
	}
	if e01 < 0 {
		t.Fatal("ring has no 0->1 edge")
	}

	all := KShortest(g, 0, 2, 4, UnitCost)
	if len(all) != 2 {
		t.Fatalf("unrestricted KShortest found %d paths, want 2", len(all))
	}
	avoid := map[netgraph.EdgeID]bool{e01: true}
	got := KShortestAvoiding(g, 0, 2, 4, UnitCost, avoid)
	if len(got) != 1 {
		t.Fatalf("avoiding KShortest found %d paths, want 1", len(got))
	}
	for _, eid := range got[0].Edges {
		if eid == e01 {
			t.Error("avoided edge appears on the returned path")
		}
	}

	dj := EdgeDisjointAvoiding(g, 0, 2, 4, UnitCost, avoid)
	if len(dj) != 1 {
		t.Fatalf("avoiding EdgeDisjoint found %d paths, want 1", len(dj))
	}
	for _, eid := range dj[0].Edges {
		if eid == e01 {
			t.Error("avoided edge appears on the disjoint path")
		}
	}

	// Avoiding every outgoing edge of the source yields nothing.
	for _, eid := range g.Out(0) {
		avoid[eid] = true
	}
	if got := KShortestAvoiding(g, 0, 2, 4, UnitCost, avoid); len(got) != 0 {
		t.Errorf("fully-banned source still yielded %d paths", len(got))
	}
}

// Package paths computes the per-job allowed path sets the scheduler
// reserves bandwidth on: Dijkstra shortest paths and Yen's k-shortest
// loopless paths over a netgraph.Graph.
//
// The paper (following Rajah, Ranka, Xia) allows each job an explicit
// collection of 4–8 paths; KShortest builds exactly those collections.
// PricedShortest is the column-generation pricing oracle: Dijkstra under
// per-edge additive prices (the LP capacity duals), which finds the
// minimum-reduced-cost path candidate for a job.
//
// All package-level functions are safe for concurrent use; they draw a
// pooled Solver whose Dijkstra scratch (dist, predecessor, visited, heap)
// and Yen ban-sets are reused across calls, mirroring lp's per-model
// scratch-buffer cache. Long-lived callers with many queries can hold
// their own Solver to skip the pool round-trip.
package paths

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"wavesched/internal/netgraph"
)

// Path is a directed path described by its edge sequence plus the derived
// node sequence (Nodes[0] is the source; Nodes[len-1] the destination).
type Path struct {
	Edges []netgraph.EdgeID
	Nodes []netgraph.NodeID
	Cost  float64
}

// Clone returns a deep copy of the path.
func (p Path) Clone() Path {
	return Path{
		Edges: append([]netgraph.EdgeID(nil), p.Edges...),
		Nodes: append([]netgraph.NodeID(nil), p.Nodes...),
		Cost:  p.Cost,
	}
}

// Hops returns the number of edges on the path.
func (p Path) Hops() int { return len(p.Edges) }

// Key returns a canonical string for de-duplication.
func (p Path) Key() string {
	return fmt.Sprint(p.Edges)
}

// Loopless reports whether the path visits no node twice.
func (p Path) Loopless() bool {
	seen := make(map[netgraph.NodeID]bool, len(p.Nodes))
	for _, v := range p.Nodes {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// CostFunc maps an edge to its routing cost. Costs must be positive.
type CostFunc func(netgraph.Edge) float64

// UnitCost weighs every edge 1, so path cost is hop count.
func UnitCost(netgraph.Edge) float64 { return 1 }

// DistanceCost weighs an edge by the Euclidean distance between its
// endpoints (plus a small constant so zero-length edges stay positive).
func DistanceCost(g *netgraph.Graph) CostFunc {
	return func(e netgraph.Edge) float64 {
		return g.Dist(e.From, e.To) + 1e-9
	}
}

// pqItem is a priority-queue element for Dijkstra.
type pqItem struct {
	node netgraph.NodeID
	dist float64
}

// pq is a hand-rolled binary min-heap over pqItems. container/heap would
// box every pushed item into an interface, which dominated the per-call
// allocation count; the sift order matches container/heap exactly, so
// tie-breaking (and therefore path choice) is unchanged.
type pq []pqItem

func (q *pq) push(it pqItem) {
	*q = append(*q, it)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].dist <= h[i].dist {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func (q *pq) pop() pqItem {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h[l].dist < h[small].dist {
			small = l
		}
		if r < n && h[r].dist < h[small].dist {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// Solver holds the Dijkstra and Yen working state — distance, predecessor,
// visited arrays, the binary heap, and the spur ban-sets — so repeated
// queries reuse one set of allocations instead of rebuilding them per call
// (the scale-tier pricing loop runs thousands of Dijkstras per round). The
// zero value is ready to use. A Solver is not safe for concurrent use;
// the package-level functions draw distinct Solvers from an internal pool.
type Solver struct {
	dist     []float64
	prevEdge []netgraph.EdgeID
	done     []bool
	q        pq

	// Yen / disjoint scratch.
	banEdges map[netgraph.EdgeID]bool
	banNodes map[netgraph.NodeID]bool
}

// NewSolver returns a Solver with scratch pre-sized for an n-node graph.
func NewSolver(n int) *Solver {
	s := &Solver{}
	s.grow(n)
	return s
}

func (s *Solver) grow(n int) {
	if cap(s.dist) < n {
		s.dist = make([]float64, n)
		s.prevEdge = make([]netgraph.EdgeID, n)
		s.done = make([]bool, n)
	}
	s.dist = s.dist[:n]
	s.prevEdge = s.prevEdge[:n]
	s.done = s.done[:n]
	if s.banEdges == nil {
		s.banEdges = make(map[netgraph.EdgeID]bool)
		s.banNodes = make(map[netgraph.NodeID]bool)
	}
}

var solverPool = sync.Pool{New: func() interface{} { return &Solver{} }}

// Shortest returns the least-cost path from src to dst, or ok=false when
// dst is unreachable. bannedEdges and bannedNodes (either may be nil)
// exclude parts of the graph, as Yen's algorithm requires.
func Shortest(g *netgraph.Graph, src, dst netgraph.NodeID, cost CostFunc,
	bannedEdges map[netgraph.EdgeID]bool, bannedNodes map[netgraph.NodeID]bool) (Path, bool) {
	s := solverPool.Get().(*Solver)
	p, ok := s.Shortest(g, src, dst, cost, bannedEdges, bannedNodes)
	solverPool.Put(s)
	return p, ok
}

// Shortest is the Solver-scratch form of the package-level Shortest.
func (s *Solver) Shortest(g *netgraph.Graph, src, dst netgraph.NodeID, cost CostFunc,
	bannedEdges map[netgraph.EdgeID]bool, bannedNodes map[netgraph.NodeID]bool) (Path, bool) {
	return s.shortest(g, src, dst, cost, nil, bannedEdges, bannedNodes)
}

// PricedShortest returns the minimum-weight src→dst path where each edge e
// weighs cost(e) + prices[e] (cost may be nil for a pure-price metric;
// prices is indexed by EdgeID and may be nil). Negative effective weights
// are clamped to a tiny positive value, so callers pass clamped dual
// prices. This is the column-generation pricing oracle: with prices set to
// the negated capacity-row duals of a slice, the returned path minimizes
// the dual load term of the reduced cost over all simple paths.
func PricedShortest(g *netgraph.Graph, src, dst netgraph.NodeID, cost CostFunc,
	prices []float64, avoid map[netgraph.EdgeID]bool) (Path, bool) {
	s := solverPool.Get().(*Solver)
	p, ok := s.PricedShortest(g, src, dst, cost, prices, avoid)
	solverPool.Put(s)
	return p, ok
}

// PricedShortest is the Solver-scratch form of the package-level
// PricedShortest.
func (s *Solver) PricedShortest(g *netgraph.Graph, src, dst netgraph.NodeID, cost CostFunc,
	prices []float64, avoid map[netgraph.EdgeID]bool) (Path, bool) {
	return s.shortest(g, src, dst, cost, prices, avoid, nil)
}

// shortest is the shared Dijkstra core: edge weight = cost(e) + prices[e],
// either part optional, clamped positive.
func (s *Solver) shortest(g *netgraph.Graph, src, dst netgraph.NodeID, cost CostFunc,
	prices []float64, bannedEdges map[netgraph.EdgeID]bool, bannedNodes map[netgraph.NodeID]bool) (Path, bool) {
	n := g.NumNodes()
	s.grow(n)
	dist, prevEdge, done := s.dist, s.prevEdge, s.done
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
		done[i] = false
	}
	if bannedNodes[src] || bannedNodes[dst] {
		return Path{}, false
	}
	dist[src] = 0
	s.q = append(s.q[:0], pqItem{src, 0})
	q := &s.q
	for len(*q) > 0 {
		it := q.pop()
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		if v == dst {
			break
		}
		for _, eid := range g.Out(v) {
			if bannedEdges[eid] {
				continue
			}
			e := g.Edge(eid)
			if bannedNodes[e.To] {
				continue
			}
			c := 0.0
			if cost != nil {
				c = cost(e)
			}
			if prices != nil && int(eid) < len(prices) {
				c += prices[eid]
			}
			if c <= 0 {
				c = 1e-12
			}
			nd := dist[v] + c
			if nd < dist[e.To] {
				dist[e.To] = nd
				prevEdge[e.To] = eid
				q.push(pqItem{e.To, nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return Path{}, false
	}
	// Reconstruct.
	var edges []netgraph.EdgeID
	for v := dst; v != src; {
		eid := prevEdge[v]
		edges = append(edges, eid)
		v = g.Edge(eid).From
	}
	// Reverse.
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i]
	}
	return makePath(g, src, edges, dist[dst]), true
}

func makePath(g *netgraph.Graph, src netgraph.NodeID, edges []netgraph.EdgeID, cost float64) Path {
	nodes := []netgraph.NodeID{src}
	for _, eid := range edges {
		nodes = append(nodes, g.Edge(eid).To)
	}
	return Path{Edges: edges, Nodes: nodes, Cost: cost}
}

// KShortest returns up to k loopless paths from src to dst in
// non-decreasing cost order, using Yen's algorithm.
func KShortest(g *netgraph.Graph, src, dst netgraph.NodeID, k int, cost CostFunc) []Path {
	return KShortestAvoiding(g, src, dst, k, cost, nil)
}

// KShortestAvoiding is KShortest restricted to paths that use no edge in
// avoid (nil means no restriction) — the residual-topology variant used
// when links are down.
func KShortestAvoiding(g *netgraph.Graph, src, dst netgraph.NodeID, k int, cost CostFunc,
	avoid map[netgraph.EdgeID]bool) []Path {
	s := solverPool.Get().(*Solver)
	out := s.KShortestAvoiding(g, src, dst, k, cost, avoid)
	solverPool.Put(s)
	return out
}

// KShortestAvoiding is the Solver-scratch form of the package-level
// KShortestAvoiding: the spur-node Dijkstras and ban-sets reuse the
// Solver's buffers instead of allocating per spur.
func (s *Solver) KShortestAvoiding(g *netgraph.Graph, src, dst netgraph.NodeID, k int, cost CostFunc,
	avoid map[netgraph.EdgeID]bool) []Path {
	if k <= 0 || src == dst {
		return nil
	}
	s.grow(g.NumNodes())
	first, ok := s.Shortest(g, src, dst, cost, avoid, nil)
	if !ok {
		return nil
	}
	result := []Path{first}
	seen := map[string]bool{first.Key(): true}
	var candidates []Path

	for len(result) < k {
		prev := result[len(result)-1]
		// Each node on the previous path (except the destination) is a
		// potential spur node.
		for i := 0; i < len(prev.Nodes)-1; i++ {
			spur := prev.Nodes[i]
			rootEdges := prev.Edges[:i]

			bannedEdges := s.banEdges
			clear(bannedEdges)
			for eid := range avoid {
				bannedEdges[eid] = true
			}
			bannedNodes := s.banNodes
			clear(bannedNodes)
			// Ban edges used by earlier results that share the same root.
			for _, rp := range result {
				if len(rp.Edges) > i && sameEdges(rp.Edges[:i], rootEdges) {
					bannedEdges[rp.Edges[i]] = true
				}
			}
			// Ban the root's interior nodes to keep paths loopless.
			for _, v := range prev.Nodes[:i] {
				bannedNodes[v] = true
			}

			spurPath, ok := s.Shortest(g, spur, dst, cost, bannedEdges, bannedNodes)
			if !ok {
				continue
			}
			totalEdges := append(append([]netgraph.EdgeID{}, rootEdges...), spurPath.Edges...)
			rootCost := 0.0
			for _, eid := range rootEdges {
				rootCost += cost(g.Edge(eid))
			}
			cand := makePath(g, src, totalEdges, rootCost+spurPath.Cost)
			if !seen[cand.Key()] {
				seen[cand.Key()] = true
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool { return candidates[a].Cost < candidates[b].Cost })
		result = append(result, candidates[0])
		candidates = candidates[1:]
	}
	return result
}

// EdgeDisjoint returns up to k pairwise edge-disjoint paths from src to
// dst, greedily: repeatedly take the shortest path and ban its edges. The
// result is not guaranteed to be the maximum disjoint set (that would be a
// flow problem), but it gives the scheduler path collections that never
// contend with each other on any link — useful when wavelength continuity
// matters or for survivability-style provisioning.
func EdgeDisjoint(g *netgraph.Graph, src, dst netgraph.NodeID, k int, cost CostFunc) []Path {
	return EdgeDisjointAvoiding(g, src, dst, k, cost, nil)
}

// EdgeDisjointAvoiding is EdgeDisjoint restricted to paths that use no
// edge in avoid (nil means no restriction).
func EdgeDisjointAvoiding(g *netgraph.Graph, src, dst netgraph.NodeID, k int, cost CostFunc,
	avoid map[netgraph.EdgeID]bool) []Path {
	s := solverPool.Get().(*Solver)
	out := s.EdgeDisjointAvoiding(g, src, dst, k, cost, avoid)
	solverPool.Put(s)
	return out
}

// EdgeDisjointAvoiding is the Solver-scratch form of the package-level
// EdgeDisjointAvoiding.
func (s *Solver) EdgeDisjointAvoiding(g *netgraph.Graph, src, dst netgraph.NodeID, k int, cost CostFunc,
	avoid map[netgraph.EdgeID]bool) []Path {
	if k <= 0 || src == dst {
		return nil
	}
	s.grow(g.NumNodes())
	banned := s.banEdges
	clear(banned)
	for eid := range avoid {
		banned[eid] = true
	}
	var out []Path
	for len(out) < k {
		p, ok := s.Shortest(g, src, dst, cost, banned, nil)
		if !ok {
			break
		}
		out = append(out, p)
		for _, eid := range p.Edges {
			banned[eid] = true
		}
	}
	return out
}

// Disjoint reports whether no two paths in the set share a directed edge.
func Disjoint(ps []Path) bool {
	seen := make(map[netgraph.EdgeID]bool)
	for _, p := range ps {
		for _, eid := range p.Edges {
			if seen[eid] {
				return false
			}
			seen[eid] = true
		}
	}
	return true
}

func sameEdges(a, b []netgraph.EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

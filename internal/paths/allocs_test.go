package paths

import (
	"testing"

	"wavesched/internal/netgraph"
)

func allocsGraph(t testing.TB, nodes int) *netgraph.Graph {
	t.Helper()
	g, err := netgraph.Waxman(netgraph.WaxmanConfig{
		Nodes: nodes, LinkPairs: 2 * nodes, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSolverReuseAllocations is the allocs guard for the pooled path
// solver, mirroring lp's TestRepeatSolveAllocations: running Yen on a
// retained Solver must allocate strictly less than building a fresh Solver
// per query, because the Dijkstra scratch (dist, predecessor, visited,
// heap) and the spur ban-sets are reused across calls.
func TestSolverReuseAllocations(t *testing.T) {
	g := allocsGraph(t, 200)
	dst := netgraph.NodeID(g.NumNodes() - 1)
	fresh := testing.AllocsPerRun(3, func() {
		s := &Solver{}
		if ps := s.KShortestAvoiding(g, 0, dst, 4, UnitCost, nil); len(ps) == 0 {
			t.Fatal("no paths")
		}
	})
	s := NewSolver(g.NumNodes())
	if ps := s.KShortestAvoiding(g, 0, dst, 4, UnitCost, nil); len(ps) == 0 {
		t.Fatal("no paths")
	}
	reused := testing.AllocsPerRun(5, func() {
		if ps := s.KShortestAvoiding(g, 0, dst, 4, UnitCost, nil); len(ps) == 0 {
			t.Fatal("no paths")
		}
	})
	if reused >= fresh {
		t.Fatalf("reused solver allocates %v objects, fresh solver %v — scratch reuse not engaged", reused, fresh)
	}
}

// TestShortestScratchAllocations pins the single-Dijkstra hot path: with a
// warmed Solver, Shortest allocates only the returned Path (edge + node
// slices), not the working arrays.
func TestShortestScratchAllocations(t *testing.T) {
	g := allocsGraph(t, 400)
	dst := netgraph.NodeID(g.NumNodes() - 1)
	s := NewSolver(g.NumNodes())
	if _, ok := s.Shortest(g, 0, dst, UnitCost, nil, nil); !ok {
		t.Fatal("no path")
	}
	got := testing.AllocsPerRun(10, func() {
		if _, ok := s.Shortest(g, 0, dst, UnitCost, nil, nil); !ok {
			t.Fatal("no path")
		}
	})
	// Path reconstruction allocates the edges slice (with append growth),
	// the nodes slice, and the boxed heap items; the dist/prev/done arrays
	// must not show up. A generous cap still catches a per-call rebuild of
	// the 400-entry scratch arrays.
	if got > 40 {
		t.Fatalf("warm Shortest allocates %v objects per call — scratch arrays are being rebuilt", got)
	}
}

// TestPricedShortestFollowsPrices checks the pricing-oracle metric: with a
// heavy price on the direct edge, the oracle routes around it.
func TestPricedShortestFollowsPrices(t *testing.T) {
	// Triangle: 0→2 direct, and 0→1→2.
	g := netgraph.New("triangle")
	for i := 0; i < 3; i++ {
		g.AddNode("", float64(i), 0)
	}
	d, err := g.AddEdge(0, 2, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.AddEdge(0, 1, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(1, 2, 1, 10); err != nil {
		t.Fatal(err)
	}

	p, ok := PricedShortest(g, 0, 2, UnitCost, nil, nil)
	if !ok || p.Hops() != 1 {
		t.Fatalf("nil prices: want the 1-hop direct path, got %+v ok=%v", p, ok)
	}

	prices := make([]float64, g.NumEdges())
	prices[d] = 5 // direct edge now costs 1+5 vs 2 for the detour
	p, ok = PricedShortest(g, 0, 2, UnitCost, prices, nil)
	if !ok || p.Hops() != 2 {
		t.Fatalf("priced direct edge: want the 2-hop detour, got %+v ok=%v", p, ok)
	}

	// Pure-price metric (nil cost) with zero prices still finds a path.
	p, ok = PricedShortest(g, 0, 2, nil, make([]float64, g.NumEdges()), nil)
	if !ok {
		t.Fatal("zero-price metric: no path")
	}

	// Avoid set still applies.
	if _, ok := PricedShortest(g, 0, 2, UnitCost, nil,
		map[netgraph.EdgeID]bool{d: true, a: true}); ok {
		t.Fatal("avoiding both outgoing edges of 0 must fail")
	}
}

package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlightRecorderRingEviction(t *testing.T) {
	fr := NewFlightRecorder(3, t.TempDir())
	for i := 1; i <= 5; i++ {
		fr.Record(i)
	}
	frames := fr.Frames()
	if len(frames) != 3 {
		t.Fatalf("frames = %d, want 3", len(frames))
	}
	for i, want := range []int{3, 4, 5} {
		if frames[i] != want {
			t.Errorf("frames[%d] = %v, want %d", i, frames[i], want)
		}
	}
}

func TestFlightRecorderDump(t *testing.T) {
	dir := t.TempDir()
	fr := NewFlightRecorder(4, dir)
	var hookReason, hookPath string
	fr.OnDump(func(reason, path string) { hookReason, hookPath = reason, path })
	fr.Record(map[string]any{"epoch": 1, "tier": "full"})
	fr.Record(map[string]any{"epoch": 2, "tier": "lpd"})

	path, err := fr.Dump("lp timeout")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir {
		t.Errorf("dump path %q not in %q", path, dir)
	}
	if !strings.Contains(filepath.Base(path), "lp_timeout") {
		t.Errorf("dump file name %q missing sanitized reason", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Reason string           `json:"reason"`
		Frames []map[string]any `json:"frames"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("dump not JSON: %v", err)
	}
	if doc.Reason != "lp timeout" || len(doc.Frames) != 2 {
		t.Errorf("doc = %+v", doc)
	}
	if doc.Frames[1]["tier"] != "lpd" {
		t.Errorf("frames = %v", doc.Frames)
	}
	if hookReason != "lp timeout" || hookPath != path {
		t.Errorf("hook got (%q, %q), want (%q, %q)", hookReason, hookPath, "lp timeout", path)
	}
}

func TestNilFlightRecorderIsNoOp(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(1)
	fr.OnDump(nil)
	if fr.Frames() != nil {
		t.Error("nil recorder Frames should be nil")
	}
	if path, err := fr.Dump("x"); err != nil || path != "" {
		t.Errorf("nil recorder Dump = (%q, %v)", path, err)
	}
}

package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs seen")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Same name returns the same instrument.
	if r.Counter("jobs_total", "jobs seen") != c {
		t.Error("re-registration returned a different counter")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(3.5)
	g.Add(-1)
	if g.Value() != 2.5 {
		t.Errorf("gauge = %g, want 2.5", g.Value())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("expected panic registering gauge over counter")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 4, 8})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-111.5) > 1e-9 {
		t.Errorf("sum = %g", h.Sum())
	}
	// Overflow observations report the largest finite bound.
	if q := h.Quantile(1); q != 8 {
		t.Errorf("q100 = %g, want 8", q)
	}
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Errorf("q50 = %g, want within (1,2]", q)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("lp_pivots_total", "total pivots").Add(42)
	r.Gauge("zstar", "stage-1 Z*").Set(1.25)
	h := r.Histogram("lp_solve_seconds", "solve wall time", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	r.CounterWith("lp_solves_total", "solves by status", map[string]string{"status": "optimal"}).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lp_pivots_total counter",
		"lp_pivots_total 42",
		"# TYPE zstar gauge",
		"zstar 1.25",
		"# TYPE lp_solve_seconds histogram",
		`lp_solve_seconds_bucket{le="0.1"} 1`,
		`lp_solve_seconds_bucket{le="1"} 2`,
		`lp_solve_seconds_bucket{le="+Inf"} 3`,
		"lp_solve_seconds_sum 2.55",
		"lp_solve_seconds_count 3",
		`lp_solves_total{status="optimal"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

// TestPrometheusLabelValueEscaping is the regression test for label
// values containing backslash, quote, and newline: they must come out as
// \\, \", and \n — and nothing else may be escaped (non-ASCII stays raw).
func TestPrometheusLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterWith("evil_total", "evil labels", map[string]string{
		"path":  `C:\tmp\"x"` + "\nnext",
		"route": "/v1/jobs/é", // non-ASCII must pass through unescaped
	}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `evil_total{path="C:\\tmp\\\"x\"\nnext",route="/v1/jobs/é"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("escaped series missing:\nwant %s\ngot  %s", want, out)
	}
	if strings.Contains(out, `\u`) || strings.Contains(out, `\x`) {
		t.Errorf("output contains Go-style escapes invalid in exposition format:\n%s", out)
	}
}

func TestCounterValue(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "").Add(3)
	r.CounterWith("by_status_total", "", map[string]string{"status": "ok"}).Add(2)
	if v, ok := r.CounterValue("hits_total", nil); !ok || v != 3 {
		t.Errorf("hits_total = (%d, %v), want (3, true)", v, ok)
	}
	if v, ok := r.CounterValue("by_status_total", map[string]string{"status": "ok"}); !ok || v != 2 {
		t.Errorf("by_status_total = (%d, %v), want (2, true)", v, ok)
	}
	if _, ok := r.CounterValue("missing_total", nil); ok {
		t.Error("missing counter reported ok")
	}
	r.Gauge("g", "")
	if _, ok := r.CounterValue("g", nil); ok {
		t.Error("gauge reported as counter")
	}
}

// TestConcurrentUpdatesAndScrapes hammers every instrument kind from many
// goroutines while scraping; run with -race.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			c := r.Counter("ops_total", "ops")
			g := r.Gauge("level", "level")
			h := r.Histogram("dur", "durations", []float64{0.001, 0.01, 0.1, 1})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 100)
			}
		}(w)
	}
	// Concurrent scrapes while updates are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	if got := r.Counter("ops_total", "ops").Value(); got != workers*perWorker {
		t.Errorf("ops_total = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("level", "level").Value(); got != workers*perWorker {
		t.Errorf("level = %g, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("dur", "durations", nil).Count(); got != workers*perWorker {
		t.Errorf("dur count = %d, want %d", got, workers*perWorker)
	}
}

// Package telemetry provides the observability substrate for the
// scheduler: a lock-cheap metrics registry (counters, gauges, fixed-bucket
// histograms) rendered in Prometheus text format, and a span-style tracer
// that emits structured JSONL events.
//
// Instrument updates are single atomic operations so instrumentation can
// stay enabled on hot paths; the registry lock is only taken when an
// instrument is first registered or when the registry is scraped. Tracing
// is opt-in per call site: every method on a nil *Tracer is a no-op, so
// packages thread a possibly-nil tracer through their options structs and
// pay only a nil check when tracing is off.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named instruments. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	byKey map[string]any // *Counter | *Gauge | *Histogram
	order []string       // keys in registration order (stable rendering)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]any)}
}

// std is the process-wide default registry that the instrumented packages
// (lp, schedule, controller, sim) register into and that cmd/wavesched
// serves over HTTP.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// seriesKey builds the unique instrument key: the metric name plus its
// sorted label pairs, which doubles as the Prometheus series name.
func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the instrument under key, or registers the one built by
// mk. It panics when the key is already bound to a different kind, which
// is a programming error akin to redeclaring a variable.
func (r *Registry) lookup(key string, mk func() any) any {
	r.mu.RLock()
	ins, ok := r.byKey[key]
	r.mu.RUnlock()
	if ok {
		return ins
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ins, ok := r.byKey[key]; ok {
		return ins
	}
	ins = mk()
	r.byKey[key] = ins
	r.order = append(r.order, key)
	return ins
}

// Counter returns the registered counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterWith(name, help, nil)
}

// CounterWith returns the counter for name with the given constant labels.
func (r *Registry) CounterWith(name, help string, labels map[string]string) *Counter {
	key := seriesKey(name, labels)
	ins := r.lookup(key, func() any {
		return &Counter{name: name, key: key, help: help, labels: copyLabels(labels)}
	})
	c, ok := ins.(*Counter)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", key, ins))
	}
	return c
}

// Gauge returns the registered gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeWith(name, help, nil)
}

// GaugeWith returns the gauge for name with the given constant labels.
func (r *Registry) GaugeWith(name, help string, labels map[string]string) *Gauge {
	key := seriesKey(name, labels)
	ins := r.lookup(key, func() any {
		return &Gauge{name: name, key: key, help: help, labels: copyLabels(labels)}
	})
	g, ok := ins.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", key, ins))
	}
	return g
}

// Histogram returns the registered histogram, creating it on first use
// with the given bucket upper bounds (ascending; +Inf is implicit). A nil
// buckets slice selects TimeBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramWith(name, help, buckets, nil)
}

// HistogramWith returns the histogram for name with constant labels.
func (r *Registry) HistogramWith(name, help string, buckets []float64, labels map[string]string) *Histogram {
	key := seriesKey(name, labels)
	ins := r.lookup(key, func() any {
		h := newHistogram(name, key, help, buckets)
		h.labels = copyLabels(labels)
		return h
	})
	h, ok := ins.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %T", key, ins))
	}
	return h
}

// CounterValue reads the current value of a registered counter by name
// and labels, reporting ok=false when no such counter exists. It lets
// observers (the flight recorder's anomaly detection, tests) sample
// counters they did not register without holding instrument handles.
func (r *Registry) CounterValue(name string, labels map[string]string) (int64, bool) {
	r.mu.RLock()
	ins, ok := r.byKey[seriesKey(name, labels)]
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	c, ok := ins.(*Counter)
	if !ok {
		return 0, false
	}
	return c.Value(), true
}

// each visits the instruments in registration order under the read lock.
func (r *Registry) each(fn func(key string, ins any)) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, key := range r.order {
		fn(key, r.byKey[key])
	}
}

// copyLabels defensively copies a label map (nil stays nil).
func copyLabels(labels map[string]string) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(labels))
	for k, v := range labels {
		out[k] = v
	}
	return out
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name, key, help string
	labels          map[string]string
	v               atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	name, key, help string
	labels          map[string]string
	bits            atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d with a compare-and-swap loop.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// TimeBuckets is the default histogram layout for durations in seconds:
// 100µs to 10s, roughly ×2.5 per step.
var TimeBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets. Updates are two
// atomic adds plus a CAS for the running sum.
type Histogram struct {
	name, key, help string
	labels          map[string]string
	bounds          []float64 // ascending upper bounds; +Inf implicit
	counts          []atomic.Uint64
	count           atomic.Uint64
	sumBits         atomic.Uint64 // float64 bits
}

func newHistogram(name, key, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = TimeBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending", name))
		}
	}
	return &Histogram{
		name:   name,
		key:    key,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		cur := math.Float64frombits(old)
		if h.sumBits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// ObserveSince records the elapsed wall time since t0 in seconds.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts
// with linear interpolation inside the located bucket. It returns 0 with
// no observations; values in the overflow bucket report the largest
// finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1] // overflow bucket
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / n
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

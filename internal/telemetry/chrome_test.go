package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteChromeTrace(t *testing.T) {
	var jsonl bytes.Buffer
	tr := NewTracer(&jsonl).WithTrace(4)
	sp := tr.Start("lp.solve")
	sp.End(KV("iters", 12))
	tr.Event("ret.search_step", KV("b", 0.5))
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := WriteChromeTrace(&jsonl, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int64          `json:"pid"`
			TID   int64          `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(doc.TraceEvents))
	}
	span, ev := doc.TraceEvents[0], doc.TraceEvents[1]
	if span.Phase != "X" || span.Name != "lp.solve" || span.TID != 4 {
		t.Errorf("span = %+v", span)
	}
	if span.Dur < 0 || span.TS <= 0 {
		t.Errorf("span timing = ts %g dur %g", span.TS, span.Dur)
	}
	if span.Args["iters"] != float64(12) {
		t.Errorf("span args = %v", span.Args)
	}
	if ev.Phase != "i" || ev.Name != "ret.search_step" || ev.TID != 4 {
		t.Errorf("event = %+v", ev)
	}
}

func TestWriteChromeTraceSkipsGarbageLines(t *testing.T) {
	in := strings.NewReader("not json\n" +
		`{"ts":"2026-01-02T03:04:05Z","kind":"event","id":1,"name":"ok"}` + "\n" +
		`{"ts":"bad time","kind":"event","id":2,"name":"dropped"}` + "\n")
	var out bytes.Buffer
	if err := WriteChromeTrace(in, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), `"name"`); got != 1 {
		t.Errorf("converted events = %d, want 1 (garbage skipped): %s", got, out.String())
	}
}

// Package telhttp exposes a telemetry registry over HTTP: Prometheus
// text-format metrics on /metrics and the net/http/pprof profiling
// endpoints under /debug/pprof/. It lives apart from the core telemetry
// package so instrumented libraries do not pull net/http into every
// binary.
package telhttp

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"wavesched/internal/telemetry"
)

// MetricsHandler serves reg in Prometheus text format.
func MetricsHandler(reg *telemetry.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are already out; nothing useful to do but drop.
			return
		}
	})
}

// Handler returns the full operational mux: /metrics plus /debug/pprof/.
func Handler(reg *telemetry.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ListenAndServe starts serving Handler(reg) on addr in a background
// goroutine and returns the server (for Shutdown) and the bound address
// (useful with ":0"). The error covers listen failures only; serve
// errors after startup are dropped, as the endpoint is best-effort
// observability.
func ListenAndServe(addr string, reg *telemetry.Registry) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("telhttp: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           Handler(reg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}

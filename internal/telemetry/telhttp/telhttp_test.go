package telhttp

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"wavesched/internal/telemetry"
)

// TestConcurrentScrapeAndUpdates hammers /metrics while an epoch-loop
// shaped writer mutates the same registry: counters incremented, gauges
// set, histograms observed, and new labeled series created mid-scrape.
// Run under -race (make check does) this pins the registry's and the
// exposition path's goroutine safety.
func TestConcurrentScrapeAndUpdates(t *testing.T) {
	reg := telemetry.NewRegistry()
	epochs := reg.Counter("loop_epochs_total", "epochs run")
	util := reg.Gauge("loop_utilization", "current utilization")
	dur := reg.Histogram("loop_epoch_seconds", "epoch wall time", nil)
	h := MetricsHandler(reg)

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			epochs.Inc()
			util.Set(float64(i%100) / 100)
			dur.Observe(float64(i%7) * 0.01)
			reg.CounterWith("loop_tier_total", "epochs by tier",
				map[string]string{"tier": fmt.Sprintf("t%d", i%4)}).Inc()
		}
	}()

	const scrapers, scrapes = 4, 50
	var scr sync.WaitGroup
	for s := 0; s < scrapers; s++ {
		scr.Add(1)
		go func() {
			defer scr.Done()
			for i := 0; i < scrapes; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				if rec.Code != 200 {
					t.Errorf("scrape returned %d", rec.Code)
					return
				}
				if !strings.Contains(rec.Body.String(), "loop_epochs_total") {
					t.Error("scrape missing loop_epochs_total")
					return
				}
			}
		}()
	}
	scr.Wait()
	close(stop)
	writer.Wait()
}

// TestHandlerRoutes checks the operational mux wires both surfaces.
func TestHandlerRoutes(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("x_total", "x").Inc()
	h := Handler(reg)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("metrics: code %d body %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Fatalf("pprof cmdline: code %d", rec.Code)
	}
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("anything")
	sp.End(KV("k", 1))
	tr.Event("ev")
	if err := tr.Flush(); err != nil {
		t.Error(err)
	}
	if err := tr.Close(); err != nil {
		t.Error(err)
	}
}

func TestTracerEmitsParseableJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sp := tr.Start("lp.solve")
	sp.End(KV("status", "optimal"), KV("iters", 42))
	tr.Event("ret.search_step", KV("b", 1.5), KV("feasible", true))
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var span struct {
		TS    string         `json:"ts"`
		Kind  string         `json:"kind"`
		Name  string         `json:"name"`
		DurUS float64        `json:"dur_us"`
		Attrs map[string]any `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &span); err != nil {
		t.Fatalf("span line not JSON: %v", err)
	}
	if span.Kind != "span" || span.Name != "lp.solve" || span.DurUS < 0 {
		t.Errorf("span = %+v", span)
	}
	if span.Attrs["status"] != "optimal" || span.Attrs["iters"] != float64(42) {
		t.Errorf("span attrs = %v", span.Attrs)
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("event line not JSON: %v", err)
	}
	if ev["kind"] != "event" || ev["name"] != "ret.search_step" {
		t.Errorf("event = %v", ev)
	}
}

// TestTracerConcurrent checks that concurrent spans and events produce
// whole lines (no interleaving); run with -race.
func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.Start("op")
				sp.End(KV("i", i))
				tr.Event("tick", KV("i", i))
			}
		}()
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != workers*perWorker*2 {
		t.Fatalf("lines = %d, want %d", len(lines), workers*perWorker*2)
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("line %d is not valid JSON: %q", i, line)
		}
	}
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("anything")
	sp.End(KV("k", 1))
	tr.Event("ev")
	if err := tr.Flush(); err != nil {
		t.Error(err)
	}
	if err := tr.Close(); err != nil {
		t.Error(err)
	}
}

func TestTracerEmitsParseableJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sp := tr.Start("lp.solve")
	sp.End(KV("status", "optimal"), KV("iters", 42))
	tr.Event("ret.search_step", KV("b", 1.5), KV("feasible", true))
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var span struct {
		TS    string         `json:"ts"`
		Kind  string         `json:"kind"`
		Name  string         `json:"name"`
		DurUS float64        `json:"dur_us"`
		Attrs map[string]any `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &span); err != nil {
		t.Fatalf("span line not JSON: %v", err)
	}
	if span.Kind != "span" || span.Name != "lp.solve" || span.DurUS < 0 {
		t.Errorf("span = %+v", span)
	}
	if span.Attrs["status"] != "optimal" || span.Attrs["iters"] != float64(42) {
		t.Errorf("span attrs = %v", span.Attrs)
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("event line not JSON: %v", err)
	}
	if ev["kind"] != "event" || ev["name"] != "ret.search_step" {
		t.Errorf("event = %v", ev)
	}
}

// TestTracerHierarchy checks that derived tracers stamp trace and parent
// IDs so a reader can reconstruct the causal tree.
func TestTracerHierarchy(t *testing.T) {
	var buf bytes.Buffer
	root := NewTracer(&buf)

	tr := root.WithTrace(7)
	if tr.TraceID() != 7 {
		t.Fatalf("TraceID = %d, want 7", tr.TraceID())
	}
	epoch := tr.Start("controller.epoch")
	child := epoch.Tracer()
	solve := child.Start("lp.solve")
	solve.End(KV("status", "optimal"))
	child.Event("ret.search_step", KV("b", 1.0))
	epoch.End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	type rec struct {
		Kind   string `json:"kind"`
		ID     int64  `json:"id"`
		Trace  int64  `json:"trace"`
		Parent int64  `json:"parent"`
		Name   string `json:"name"`
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	recs := make([]rec, len(lines))
	for i, l := range lines {
		if err := json.Unmarshal([]byte(l), &recs[i]); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
	}
	// Records appear in End order: lp.solve, event, epoch.
	lp, ev, ep := recs[0], recs[1], recs[2]
	if ep.Name != "controller.epoch" || ep.Trace != 7 || ep.Parent != 0 {
		t.Errorf("epoch = %+v", ep)
	}
	if lp.Name != "lp.solve" || lp.Trace != 7 || lp.Parent != ep.ID {
		t.Errorf("lp = %+v (epoch id %d)", lp, ep.ID)
	}
	if ev.Trace != 7 || ev.Parent != ep.ID {
		t.Errorf("event = %+v (epoch id %d)", ev, ep.ID)
	}
}

// TestRootTracerOmitsHierarchyFields pins the root-scope wire format to
// the pre-hierarchy schema: no trace/parent keys at all.
func TestRootTracerOmitsHierarchyFields(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Start("op").End()
	_ = tr.Flush()
	if strings.Contains(buf.String(), `"trace"`) || strings.Contains(buf.String(), `"parent"`) {
		t.Errorf("root record leaked hierarchy fields: %s", buf.String())
	}
}

func TestNilTracerHierarchyIsNoOp(t *testing.T) {
	var tr *Tracer
	derived := tr.WithTrace(3)
	if derived != nil {
		t.Error("WithTrace on nil tracer should stay nil")
	}
	sp := derived.Start("x")
	if sp.Tracer() != nil {
		t.Error("Span.Tracer on zero span should be nil")
	}
	sp.End()
	if tr.TraceID() != 0 {
		t.Error("TraceID on nil tracer should be 0")
	}
}

// TestTracerConcurrent checks that concurrent spans and events produce
// whole lines (no interleaving); run with -race.
func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.Start("op")
				sp.End(KV("i", i))
				tr.Event("tick", KV("i", i))
			}
		}()
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != workers*perWorker*2 {
		t.Fatalf("lines = %d, want %d", len(lines), workers*perWorker*2)
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("line %d is not valid JSON: %q", i, line)
		}
	}
}

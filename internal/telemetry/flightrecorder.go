package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// FlightRecorder is a bounded ring buffer of opaque per-epoch frames
// retaining full solve detail for the last N epochs. The producer (the
// controller) records one frame per epoch; on an anomaly — lp timeout,
// cold-fallback spike, degradation, recovered panic — or on SIGQUIT the
// whole ring is dumped to disk as one JSON document so the offending
// window survives the process.
//
// Frames are stored as any and serialized with encoding/json at dump
// time; the recorder itself is agnostic to their shape. All methods are
// safe for concurrent use and no-ops on a nil receiver.
type FlightRecorder struct {
	mu     sync.Mutex
	frames []any // ring storage
	next   int   // next write index
	filled bool  // ring has wrapped
	dir    string
	dumps  int
	onDump func(reason, path string)
}

// NewFlightRecorder returns a recorder retaining the last n frames and
// dumping into dir (created on first dump). n < 1 is clamped to 1.
func NewFlightRecorder(n int, dir string) *FlightRecorder {
	if n < 1 {
		n = 1
	}
	return &FlightRecorder{frames: make([]any, n), dir: dir}
}

// OnDump registers a hook invoked (outside the recorder lock) after each
// successful dump, with the triggering reason and the written path. The
// server uses it to log a durable anomaly entry in the WAL.
func (fr *FlightRecorder) OnDump(fn func(reason, path string)) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	fr.onDump = fn
	fr.mu.Unlock()
}

// Record appends one frame, evicting the oldest when full.
func (fr *FlightRecorder) Record(frame any) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	fr.frames[fr.next] = frame
	fr.next++
	if fr.next == len(fr.frames) {
		fr.next = 0
		fr.filled = true
	}
	fr.mu.Unlock()
}

// Frames returns the retained frames, oldest first.
func (fr *FlightRecorder) Frames() []any {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.snapshotLocked()
}

func (fr *FlightRecorder) snapshotLocked() []any {
	var out []any
	if fr.filled {
		out = append(out, fr.frames[fr.next:]...)
	}
	out = append(out, fr.frames[:fr.next]...)
	return out
}

// Dump writes the retained frames as a JSON document to a new file in
// the recorder's directory and returns its path. The reason becomes part
// of the file name (sanitized) and the document body. Dumping with an
// empty ring still writes a (frameless) document so the trigger itself
// is preserved.
func (fr *FlightRecorder) Dump(reason string) (string, error) {
	if fr == nil {
		return "", nil
	}
	fr.mu.Lock()
	frames := fr.snapshotLocked()
	fr.dumps++
	n := fr.dumps
	dir := fr.dir
	hook := fr.onDump
	fr.mu.Unlock()

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("telemetry: flight recorder dir: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("flight-%03d-%s.json", n, sanitizeReason(reason)))
	doc := struct {
		Reason string `json:"reason"`
		Frames []any  `json:"frames"`
	}{Reason: reason, Frames: frames}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("telemetry: flight recorder marshal: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("telemetry: flight recorder write: %w", err)
	}
	if hook != nil {
		hook(reason, path)
	}
	return path, nil
}

// sanitizeReason maps a free-form reason to a file-name-safe slug.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, reason)
}

package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value attribute attached to a span or event.
type Attr struct {
	Key   string
	Value any
}

// KV builds an attribute.
func KV(key string, value any) Attr { return Attr{Key: key, Value: value} }

// sink is the shared write side of a tracer: all derived Tracer handles
// for one output stream point at the same sink, so span IDs are unique
// per stream and lines never interleave.
type sink struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	seq    atomic.Int64
	err    error // first write error, reported by Close
}

// Tracer writes structured spans and point events as JSON Lines, one
// object per line. All methods are safe for concurrent use, and every
// method on a nil *Tracer is a no-op, so call sites thread a possibly-nil
// tracer and pay only a nil check when tracing is disabled.
//
// A Tracer is a lightweight immutable handle carrying the causal scope
// (trace ID and parent span ID) on top of a shared sink. Span.Tracer
// derives a child scope, so passing the derived handle down through an
// options struct links everything recorded below to the enclosing span:
//
//	ep := tr.Start("controller.epoch")
//	opts.Tracer = ep.Tracer() // children of the epoch span
//
// Record schema (one JSON object per line):
//
//	{"ts":"<RFC3339Nano>","kind":"span","id":7,"trace":3,"parent":5,
//	 "name":"lp.solve","dur_us":1234.5,
//	 "attrs":{"status":"optimal","iters":42}}
//	{"ts":"<RFC3339Nano>","kind":"event","id":8,"trace":3,"parent":5,
//	 "name":"ret.search_step","attrs":{"b":1.25,"feasible":true}}
//
// trace and parent are omitted when zero (root scope), which keeps the
// flat single-tracer output identical to the pre-hierarchy format. Span
// records are emitted once, when the span ends; dur_us is the span's
// wall-clock duration in microseconds.
type Tracer struct {
	s      *sink
	trace  int64
	parent int64
}

// NewTracer returns a root tracer writing JSONL records to w.
func NewTracer(w io.Writer) *Tracer {
	s := &sink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.closer = c
	}
	return &Tracer{s: s}
}

// OpenTraceFile creates (or truncates) path and returns a tracer writing
// to it. Close flushes and closes the file.
func OpenTraceFile(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: open trace file: %w", err)
	}
	return NewTracer(f), nil
}

// WithTrace returns a handle scoped to the given trace ID with no parent
// span. Callers that own a natural causal unit (the controller uses the
// epoch index) pin the trace ID so records group deterministically even
// across restarts and replay.
func (t *Tracer) WithTrace(id int64) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{s: t.s, trace: id}
}

// TraceID reports the trace scope of this handle (0 for the root).
func (t *Tracer) TraceID() int64 {
	if t == nil {
		return 0
	}
	return t.trace
}

// record is the JSONL wire form.
type record struct {
	TS     string         `json:"ts"`
	Kind   string         `json:"kind"`
	ID     int64          `json:"id"`
	Trace  int64          `json:"trace,omitempty"`
	Parent int64          `json:"parent,omitempty"`
	Name   string         `json:"name"`
	DurUS  *float64       `json:"dur_us,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

func (s *sink) write(rec record) {
	line, err := json.Marshal(rec)
	if err != nil {
		return // unmarshalable attr; drop the record rather than fail the run
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if _, err := s.w.Write(line); err != nil {
		s.err = err
		return
	}
	if err := s.w.WriteByte('\n'); err != nil {
		s.err = err
	}
}

// Span is an in-progress timed operation. The zero Span (from a nil
// tracer) is valid and End on it is a no-op.
type Span struct {
	t     *Tracer
	name  string
	id    int64
	start time.Time
}

// Start begins a span in the tracer's scope. End emits the record.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, id: t.s.seq.Add(1), start: time.Now()}
}

// Tracer derives a child handle whose spans and events are parented to
// this span. The zero Span yields nil, preserving nil-safety all the way
// down the call chain.
func (s Span) Tracer() *Tracer {
	if s.t == nil {
		return nil
	}
	return &Tracer{s: s.t.s, trace: s.t.trace, parent: s.id}
}

// ID reports the span's ID within its trace (0 for the zero Span).
func (s Span) ID() int64 { return s.id }

// End finishes the span, attaching the given attributes.
func (s Span) End(attrs ...Attr) {
	if s.t == nil {
		return
	}
	now := time.Now()
	dur := float64(now.Sub(s.start)) / float64(time.Microsecond)
	s.t.s.write(record{
		TS:     now.UTC().Format(time.RFC3339Nano),
		Kind:   "span",
		ID:     s.id,
		Trace:  s.t.trace,
		Parent: s.t.parent,
		Name:   s.name,
		DurUS:  &dur,
		Attrs:  attrMap(attrs),
	})
}

// Event emits a point-in-time record in the tracer's scope.
func (t *Tracer) Event(name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.s.write(record{
		TS:     time.Now().UTC().Format(time.RFC3339Nano),
		Kind:   "event",
		ID:     t.s.seq.Add(1),
		Trace:  t.trace,
		Parent: t.parent,
		Name:   name,
		Attrs:  attrMap(attrs),
	})
}

// Flush forces buffered records out.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.s.err != nil {
		return t.s.err
	}
	return t.s.w.Flush()
}

// Close flushes and closes the underlying writer, returning the first
// error seen on any write. Closing any derived handle closes the shared
// sink.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	ferr := t.s.w.Flush()
	if t.s.closer != nil {
		if cerr := t.s.closer.Close(); ferr == nil {
			ferr = cerr
		}
	}
	if t.s.err != nil {
		return t.s.err
	}
	return ferr
}

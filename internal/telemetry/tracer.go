package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value attribute attached to a span or event.
type Attr struct {
	Key   string
	Value any
}

// KV builds an attribute.
func KV(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Tracer writes structured spans and point events as JSON Lines, one
// object per line. All methods are safe for concurrent use, and every
// method on a nil *Tracer is a no-op, so call sites thread a possibly-nil
// tracer and pay only a nil check when tracing is disabled.
//
// Record schema (one JSON object per line):
//
//	{"ts":"<RFC3339Nano>","kind":"span","id":7,"name":"lp.solve",
//	 "dur_us":1234.5,"attrs":{"status":"optimal","iters":42}}
//	{"ts":"<RFC3339Nano>","kind":"event","id":8,"name":"ret.search_step",
//	 "attrs":{"b":1.25,"feasible":true}}
//
// Span records are emitted once, when the span ends; dur_us is the span's
// wall-clock duration in microseconds.
type Tracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	seq    atomic.Int64
	err    error // first write error, reported by Close
}

// NewTracer returns a tracer writing JSONL records to w.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		t.closer = c
	}
	return t
}

// OpenTraceFile creates (or truncates) path and returns a tracer writing
// to it. Close flushes and closes the file.
func OpenTraceFile(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: open trace file: %w", err)
	}
	return NewTracer(f), nil
}

// record is the JSONL wire form.
type record struct {
	TS    string         `json:"ts"`
	Kind  string         `json:"kind"`
	ID    int64          `json:"id"`
	Name  string         `json:"name"`
	DurUS *float64       `json:"dur_us,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

func (t *Tracer) write(rec record) {
	line, err := json.Marshal(rec)
	if err != nil {
		return // unmarshalable attr; drop the record rather than fail the run
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if _, err := t.w.Write(line); err != nil {
		t.err = err
		return
	}
	if err := t.w.WriteByte('\n'); err != nil {
		t.err = err
	}
}

// Span is an in-progress timed operation. The zero Span (from a nil
// tracer) is valid and End on it is a no-op.
type Span struct {
	t     *Tracer
	name  string
	id    int64
	start time.Time
}

// Start begins a span. End emits the record.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, id: t.seq.Add(1), start: time.Now()}
}

// End finishes the span, attaching the given attributes.
func (s Span) End(attrs ...Attr) {
	if s.t == nil {
		return
	}
	now := time.Now()
	dur := float64(now.Sub(s.start)) / float64(time.Microsecond)
	s.t.write(record{
		TS:    now.UTC().Format(time.RFC3339Nano),
		Kind:  "span",
		ID:    s.id,
		Name:  s.name,
		DurUS: &dur,
		Attrs: attrMap(attrs),
	})
}

// Event emits a point-in-time record.
func (t *Tracer) Event(name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.write(record{
		TS:    time.Now().UTC().Format(time.RFC3339Nano),
		Kind:  "event",
		ID:    t.seq.Add(1),
		Name:  name,
		Attrs: attrMap(attrs),
	})
}

// Flush forces buffered records out.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Close flushes and closes the underlying writer, returning the first
// error seen on any write.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ferr := t.w.Flush()
	if t.closer != nil {
		if cerr := t.closer.Close(); ferr == nil {
			ferr = cerr
		}
	}
	if t.err != nil {
		return t.err
	}
	return ferr
}

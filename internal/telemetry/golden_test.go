package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestTraceJSONLGolden pins the JSONL span schema — the key set, kind
// discriminators, hierarchy fields, and attr encoding — against a golden
// file. Timestamps and durations are volatile, so they are zeroed before
// comparison; everything else (IDs included: the sink's sequence is
// deterministic) must match byte for byte. Regenerate with -update.
func TestTraceJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	root := NewTracer(&buf)

	// Root-scope span and event: no trace/parent keys at all.
	rs := root.Start("bench.fig4")
	root.Event("bench.note", KV("figure", 4))
	rs.End(KV("seeds", 3))

	// Hierarchical scope: epoch span → lp child span + event, mixed attr
	// types (int, float, string, bool).
	ep := root.WithTrace(7).Start("controller.epoch")
	lp := ep.Tracer().Start("lp.solve")
	lp.End(KV("iters", 12), KV("objective", 1.5), KV("pricing", "dantzig"), KV("warm", true))
	ep.Tracer().Event("ret.search_step", KV("b", 0.25), KV("feasible", false))
	ep.End()

	if err := root.Flush(); err != nil {
		t.Fatal(err)
	}

	var lines []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		m["ts"] = 0
		if _, ok := m["dur_us"]; ok {
			m["dur_us"] = 0
		}
		b, err := json.Marshal(m) // map marshaling sorts keys: canonical form
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(b))
	}
	got := strings.Join(lines, "\n") + "\n"

	golden := filepath.Join("testdata", "trace_golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("trace JSONL schema drifted from golden (run with -update if intended):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4). Instruments appear in
// registration order; HELP and TYPE headers are emitted once per metric
// name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	seen := make(map[string]bool)
	header := func(name, help, typ string) {
		if seen[name] {
			return
		}
		seen[name] = true
		if help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
	}
	r.each(func(key string, ins any) {
		switch m := ins.(type) {
		case *Counter:
			header(m.name, m.help, "counter")
			fmt.Fprintf(&b, "%s %d\n", series(m.name, m.labels, nil), m.Value())
		case *Gauge:
			header(m.name, m.help, "gauge")
			fmt.Fprintf(&b, "%s %s\n", series(m.name, m.labels, nil), formatFloat(m.Value()))
		case *Histogram:
			header(m.name, m.help, "histogram")
			cum := uint64(0)
			for i, bound := range m.bounds {
				cum += m.counts[i].Load()
				fmt.Fprintf(&b, "%s %d\n",
					series(m.name+"_bucket", m.labels, map[string]string{"le": formatFloat(bound)}), cum)
			}
			fmt.Fprintf(&b, "%s %d\n",
				series(m.name+"_bucket", m.labels, map[string]string{"le": "+Inf"}), m.Count())
			fmt.Fprintf(&b, "%s %s\n", series(m.name+"_sum", m.labels, nil), formatFloat(m.Sum()))
			fmt.Fprintf(&b, "%s %d\n", series(m.name+"_count", m.labels, nil), m.Count())
		}
	})
	_, err := io.WriteString(w, b.String())
	return err
}

// series renders a sample name with the union of constant and extra
// labels, sorted by key.
func series(name string, labels, extra map[string]string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return name
	}
	merged := make(map[string]string, len(labels)+len(extra))
	for k, v := range labels {
		merged[k] = v
	}
	for k, v := range extra {
		merged[k] = v
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", k, escapeLabelValue(merged[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format: only
// backslash, double quote, and newline are escaped. Go's %q is not
// usable here because it also escapes non-ASCII and control characters
// as \uXXXX/\xXX sequences, which the Prometheus text parser rejects.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// chromeEvent is one entry in the Chrome trace_event JSON format, the
// schema understood by chrome://tracing and Perfetto (legacy JSON
// import). Timestamps and durations are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int64          `json:"pid"`
	TID   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace converts a JSONL span stream (as written by Tracer)
// into Chrome trace_event JSON: spans become complete ("X") events with
// ts = end − dur, point events become instant ("i") events, and each
// trace ID maps to its own thread lane so one epoch reads as one row.
// Records that fail to parse are skipped rather than failing the whole
// conversion, matching the tracer's own drop-don't-fail policy.
func WriteChromeTrace(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	events := make([]chromeEvent, 0, 1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			continue
		}
		ts, err := time.Parse(time.RFC3339Nano, rec.TS)
		if err != nil {
			continue
		}
		us := float64(ts.UnixNano()) / 1e3
		ev := chromeEvent{
			Name: rec.Name,
			TS:   us,
			PID:  1,
			TID:  rec.Trace,
			Args: rec.Attrs,
		}
		if rec.Kind == "span" && rec.DurUS != nil {
			ev.Phase = "X"
			ev.Dur = *rec.DurUS
			ev.TS = us - *rec.DurUS // tracer stamps spans at End
		} else {
			ev.Phase = "i"
			ev.Scope = "t"
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("telemetry: scan trace: %w", err)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

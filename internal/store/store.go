// Package store persists the scheduler daemon's input history: an
// append-only JSONL write-ahead log of every state-changing event
// (admissions, link failures/repairs, epoch boundaries), compacted
// periodically into a snapshot file.
//
// The controller is deterministic: replaying the same event sequence
// through a fresh controller reproduces byte-identical state. The store
// therefore never serializes controller internals (LP bases, committed
// plans); a "snapshot" is the compacted event prefix, atomically renamed
// into place, and recovery is
//
//	replay(snapshot.jsonl) ++ replay(wal.jsonl)
//
// which equals the original event sequence. Appends are fsynced before
// they are acknowledged, so an acknowledged admission survives a crash; a
// torn final WAL line (crash mid-write) is detected on open and truncated
// away, which can only lose the single unacknowledged event.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"wavesched/internal/job"
	"wavesched/internal/netgraph"
	"wavesched/internal/telemetry"
)

// Package-level instruments on the default telemetry registry.
var (
	telAppends = telemetry.Default().Counter("wal_appends_total",
		"Entries appended to the write-ahead log.")
	telFsync = telemetry.Default().Histogram("wal_fsync_seconds",
		"Wall time of one WAL append fsync.", nil)
	telSnapshots = telemetry.Default().Counter("wal_snapshots_total",
		"WAL compactions into the snapshot file.")
	telReplayed = telemetry.Default().Counter("wal_replayed_entries_total",
		"Entries replayed from snapshot+WAL at open.")
	telTornTails = telemetry.Default().Counter("wal_torn_tails_total",
		"Torn trailing WAL lines truncated at open.")
	telWALBytes = telemetry.Default().Gauge("wal_live_bytes",
		"Bytes in the live (uncompacted) WAL segment.")
)

// EntryType discriminates WAL entries.
type EntryType string

// WAL entry types. Values are part of the on-disk format.
const (
	// EntrySubmit: one job admission request, with the fully-resolved job
	// (server-assigned ID and arrival included) so replay is exact.
	EntrySubmit EntryType = "submit"
	// EntryBatchSubmit: one admission intake drain — every job accepted
	// in one batch, fully resolved, acknowledged under a single fsync.
	// Replay applies the jobs in order, so a batch of N is equivalent to
	// N submit entries; the batch form exists so the durability cost of
	// an intake drain is one write + one fsync regardless of N, and so
	// cluster followers replicate the batch boundary intact.
	EntryBatchSubmit EntryType = "submit_batch"
	// EntryLinkDown: a link failure at virtual time T.
	EntryLinkDown EntryType = "link_down"
	// EntryLinkUp: a link repair at virtual time T.
	EntryLinkUp EntryType = "link_up"
	// EntryEpoch: one scheduling instant (controller RunEpoch).
	EntryEpoch EntryType = "epoch"
	// EntryAnomaly: a flight-recorder dump was written (Reason names the
	// trigger, Path the dump file). Anomaly entries are durable history
	// only — replay skips them, since the dump itself already captured
	// the state and the controller's audit records regenerate
	// deterministically from the other entries.
	EntryAnomaly EntryType = "anomaly"
	// EntryLeadership: a cluster leadership change (Node took over with
	// fencing token Token; Reason is "elected" or "deposed"). Like
	// anomaly entries these are informational history — replay skips
	// them — but they make every failover auditable from the log alone,
	// and the flight recorder can dump around them.
	EntryLeadership EntryType = "leadership"
)

// JobEntry is the job wire format inside a submit entry, mirroring the
// field names of the job package's JSON interchange format.
type JobEntry struct {
	ID      int     `json:"id"`
	Arrival float64 `json:"arrival"`
	Src     int     `json:"src"`
	Dst     int     `json:"dst"`
	Size    float64 `json:"size"`
	Start   float64 `json:"start"`
	End     float64 `json:"end"`
	// Admission metadata (absent pre-admission entries decode to the
	// anonymous tenant and the standard class). Replay feeds these back
	// into the admission policy so quota accounting and class weights —
	// and therefore schedules — reproduce exactly.
	Tenant   string `json:"tenant,omitempty"`
	Priority string `json:"priority,omitempty"`
}

// NewJobEntry converts a job to its WAL form.
func NewJobEntry(j job.Job) *JobEntry {
	return &JobEntry{
		ID: int(j.ID), Arrival: j.Arrival,
		Src: int(j.Src), Dst: int(j.Dst),
		Size: j.Size, Start: j.Start, End: j.End,
	}
}

// Job converts the WAL form back to a job.
func (e *JobEntry) Job() job.Job {
	return job.Job{
		ID: job.ID(e.ID), Arrival: e.Arrival,
		Src: netgraph.NodeID(e.Src), Dst: netgraph.NodeID(e.Dst),
		Size: e.Size, Start: e.Start, End: e.End,
	}
}

// Entry is one WAL record: a monotonically increasing sequence number,
// the event type, and the type's payload.
type Entry struct {
	Seq    uint64     `json:"seq"`
	Type   EntryType  `json:"type"`
	Time   float64    `json:"t,omitempty"`      // link events: virtual event time
	Edge   int        `json:"edge"`             // link events: failed/repaired edge
	Job    *JobEntry  `json:"job,omitempty"`    // submit entries
	Jobs   []JobEntry `json:"jobs,omitempty"`   // batch-submit entries: accepted jobs in intake order
	Reason string     `json:"reason,omitempty"` // anomaly entries: dump trigger; leadership entries: elected/deposed
	Path   string     `json:"path,omitempty"`   // anomaly entries: dump file
	Node   string     `json:"node,omitempty"`   // leadership entries: node ID
	Token  uint64     `json:"token,omitempty"`  // leadership entries: fencing token
}

const (
	walName  = "wal.jsonl"
	snapName = "snapshot.jsonl"
)

// Log is the durable event log: a live WAL segment plus a snapshot
// holding the compacted prefix. Methods are not safe for concurrent use;
// the serving layer serializes all writes behind its own mutex.
type Log struct {
	dir           string
	snapshotEvery int
	wal           *os.File
	seq           uint64
	segEntries    int   // entries in the live WAL segment
	segBytes      int64 // bytes in the live WAL segment
}

// Open opens (or creates) the log in dir and returns the replayed event
// history, snapshot first. snapshotEvery sets how many live WAL entries
// trigger a compaction; 0 or negative disables compaction.
//
// A torn final WAL line — the tell-tale of a crash mid-append — is
// truncated away. Any other decode error is corruption and fails the
// open; the snapshot is written atomically, so it must always parse.
func Open(dir string, snapshotEvery int) (*Log, []Entry, error) {
	if dir == "" {
		return nil, nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	l := &Log{dir: dir, snapshotEvery: snapshotEvery}

	var entries []Entry
	snapEntries, _, err := readEntries(filepath.Join(dir, snapName), false)
	if err != nil {
		return nil, nil, fmt.Errorf("store: snapshot: %w", err)
	}
	entries = append(entries, snapEntries...)

	walPath := filepath.Join(dir, walName)
	walEntries, goodOffset, err := readEntries(walPath, true)
	if err != nil {
		return nil, nil, fmt.Errorf("store: wal: %w", err)
	}
	// A crash between compaction's snapshot rename and WAL truncate
	// leaves the WAL as a stale copy of the snapshot's tail. Compaction
	// folds the whole segment at once, so any overlap means the entire
	// segment is already in the snapshot: drop it.
	if len(walEntries) > 0 && len(snapEntries) > 0 &&
		walEntries[0].Seq <= snapEntries[len(snapEntries)-1].Seq {
		walEntries, goodOffset = nil, 0
	}
	entries = append(entries, walEntries...)

	for i, e := range entries {
		if e.Seq != uint64(i)+1 {
			return nil, nil, fmt.Errorf("store: entry %d has seq %d, want %d (log corrupt)", i, e.Seq, i+1)
		}
	}

	_, statErr := os.Stat(walPath)
	wal, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	if os.IsNotExist(statErr) {
		// The segment file was just created: fsync the directory so the
		// new name itself survives power loss, not only its contents.
		syncDir(dir)
	}
	// Drop a torn trailing line before appending anything after it.
	if fi, err := wal.Stat(); err == nil && fi.Size() > goodOffset {
		telTornTails.Inc()
		if err := wal.Truncate(goodOffset); err != nil {
			wal.Close()
			return nil, nil, fmt.Errorf("store: truncate torn wal tail: %w", err)
		}
	}
	if _, err := wal.Seek(0, io.SeekEnd); err != nil {
		wal.Close()
		return nil, nil, fmt.Errorf("store: %w", err)
	}

	l.wal = wal
	l.seq = uint64(len(entries))
	l.segEntries = len(walEntries)
	l.segBytes = goodOffset
	telReplayed.Add(int64(len(entries)))
	telWALBytes.Set(float64(l.segBytes))
	return l, entries, nil
}

// readEntries decodes a JSONL file. With tolerateTail, a final line that
// does not decode is treated as torn and skipped; the returned offset is
// the end of the last good line. A missing file yields no entries.
func readEntries(path string, tolerateTail bool) ([]Entry, int64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()

	var entries []Entry
	var offset int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		var e Entry
		if err := json.Unmarshal(raw, &e); err != nil {
			if tolerateTail {
				// Only the final line may be torn; a bad line mid-file is
				// corruption. Peek for more content.
				if sc.Scan() {
					return nil, 0, fmt.Errorf("%s line %d: %w", path, line, err)
				}
				return entries, offset, nil
			}
			return nil, 0, fmt.Errorf("%s line %d: %w", path, line, err)
		}
		offset += int64(len(raw)) + 1 // the scanner strips the newline
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return entries, offset, nil
}

// Seq returns the sequence number of the most recent entry.
func (l *Log) Seq() uint64 { return l.seq }

// Append assigns the next sequence number, writes the entry to the WAL,
// and fsyncs before returning. The entry is durable once Append returns.
// Compaction runs when the live segment reaches snapshotEvery entries.
func (l *Log) Append(e Entry) (Entry, error) {
	if l.wal == nil {
		return Entry{}, fmt.Errorf("store: log is closed")
	}
	l.seq++
	e.Seq = l.seq
	b, err := json.Marshal(e)
	if err != nil {
		return Entry{}, fmt.Errorf("store: marshal entry: %w", err)
	}
	b = append(b, '\n')
	if _, err := l.wal.Write(b); err != nil {
		return Entry{}, fmt.Errorf("store: append: %w", err)
	}
	t0 := time.Now()
	if err := l.wal.Sync(); err != nil {
		return Entry{}, fmt.Errorf("store: fsync: %w", err)
	}
	telFsync.ObserveSince(t0)
	telAppends.Inc()
	l.segEntries++
	l.segBytes += int64(len(b))
	telWALBytes.Set(float64(l.segBytes))

	if l.snapshotEvery > 0 && l.segEntries >= l.snapshotEvery {
		if err := l.compact(); err != nil {
			return Entry{}, err
		}
	}
	return e, nil
}

// AppendBatch writes a run of pre-sequenced entries — a replication
// batch shipped by a cluster leader — with a single fsync covering the
// whole run. Unlike Append, the entries' sequence numbers are assigned
// by the caller and must continue this log exactly (first entry at
// Seq()+1, contiguous after that); a mismatch means the streams have
// diverged and nothing is written.
func (l *Log) AppendBatch(entries []Entry) error {
	if l.wal == nil {
		return fmt.Errorf("store: log is closed")
	}
	if len(entries) == 0 {
		return nil
	}
	var buf []byte
	for i, e := range entries {
		if e.Seq != l.seq+uint64(i)+1 {
			return fmt.Errorf("store: batch entry %d has seq %d, want %d (stream diverged)", i, e.Seq, l.seq+uint64(i)+1)
		}
		b, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("store: marshal entry: %w", err)
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
	}
	if _, err := l.wal.Write(buf); err != nil {
		return fmt.Errorf("store: append batch: %w", err)
	}
	t0 := time.Now()
	if err := l.wal.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	telFsync.ObserveSince(t0)
	telAppends.Add(int64(len(entries)))
	l.seq = entries[len(entries)-1].Seq
	l.segEntries += len(entries)
	l.segBytes += int64(len(buf))
	telWALBytes.Set(float64(l.segBytes))

	if l.snapshotEvery > 0 && l.segEntries >= l.snapshotEvery {
		if err := l.compact(); err != nil {
			return err
		}
	}
	return nil
}

// compact folds the live WAL segment into the snapshot: write
// snapshot+wal to a temp file, fsync, rename over the snapshot, then
// truncate the WAL. A crash between the rename and the truncate leaves
// the WAL as a stale duplicate of the snapshot's tail; Open detects the
// seq overlap and discards the segment.
func (l *Log) compact() error {
	snapPath := filepath.Join(l.dir, snapName)
	tmpPath := snapPath + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after a successful rename

	copyInto := func(path string) error {
		src, err := os.Open(path)
		if os.IsNotExist(err) {
			return nil
		}
		if err != nil {
			return err
		}
		defer src.Close()
		_, err = io.Copy(tmp, src)
		return err
	}
	if err := copyInto(snapPath); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := copyInto(filepath.Join(l.dir, walName)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmpPath, snapPath); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	// Fsync the directory immediately after the rename: without it the
	// rename may not be durable, and a power loss could resurrect the old
	// snapshot after the WAL below has already been truncated — losing
	// the folded segment entirely.
	syncDir(l.dir)
	if err := l.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: compact: truncate wal: %w", err)
	}
	if _, err := l.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := l.wal.Sync(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	syncDir(l.dir)
	l.segEntries = 0
	l.segBytes = 0
	telWALBytes.Set(0)
	telSnapshots.Inc()
	return nil
}

// Wipe removes the log files from dir — a closed log only. A cluster
// follower whose log has diverged from the elected leader's (it was a
// leader itself and kept an unreplicated suffix) wipes and re-pulls the
// authoritative history via snapshot transfer.
func Wipe(dir string) error {
	for _, name := range []string{snapName, walName, snapName + ".tmp"} {
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: wipe: %w", err)
		}
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so renames survive power loss; errors are
// dropped (not all filesystems support it).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}

// Close flushes and closes the WAL. Further appends fail.
func (l *Log) Close() error {
	if l.wal == nil {
		return nil
	}
	err := l.wal.Sync()
	if cerr := l.wal.Close(); err == nil {
		err = cerr
	}
	l.wal = nil
	return err
}

package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"wavesched/internal/job"
)

func testJob(id int) job.Job {
	return job.Job{ID: job.ID(id), Arrival: 0, Src: 0, Dst: 1, Size: 2, Start: 0, End: 4}
}

func appendAll(t *testing.T, l *Log, entries ...Entry) []Entry {
	t.Helper()
	out := make([]Entry, 0, len(entries))
	for _, e := range entries {
		got, err := l.Append(e)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, got)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, entries, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh log replayed %d entries", len(entries))
	}
	written := appendAll(t, l,
		Entry{Type: EntrySubmit, Job: NewJobEntry(testJob(1))},
		Entry{Type: EntryEpoch},
		Entry{Type: EntryLinkDown, Time: 1.5, Edge: 3},
		Entry{Type: EntryLinkUp, Time: 2.25, Edge: 3},
		Entry{Type: EntryEpoch},
	)
	if l.Seq() != 5 {
		t.Errorf("seq = %d, want 5", l.Seq())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, replayed, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(replayed, written) {
		t.Fatalf("replayed %+v\nwant %+v", replayed, written)
	}
	if got := replayed[0].Job.Job(); got != testJob(1) {
		t.Errorf("job round trip: %+v != %+v", got, testJob(1))
	}
	if l2.Seq() != 5 {
		t.Errorf("reopened seq = %d, want 5", l2.Seq())
	}
	// Appends continue the sequence.
	e, err := l2.Append(Entry{Type: EntryEpoch})
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != 6 {
		t.Errorf("next seq = %d, want 6", e.Seq)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, Entry{Type: EntryEpoch}, Entry{Type: EntryEpoch})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial line with no newline.
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"ty`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, replayed, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer l2.Close()
	if len(replayed) != 2 {
		t.Fatalf("replayed %d entries, want 2", len(replayed))
	}
	// The torn bytes are gone; the next append lands on a clean boundary.
	e, err := l2.Append(Entry{Type: EntryLinkDown, Time: 1, Edge: 0})
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != 3 {
		t.Errorf("seq after torn tail = %d, want 3", e.Seq)
	}
	l2.Close()
	_, replayed, err = Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 3 || replayed[2].Type != EntryLinkDown {
		t.Fatalf("replayed %+v, want 3 entries ending in link_down", replayed)
	}
}

// TestMidFileCorruptionRejected: a bad line that is not the final line is
// corruption, not a torn tail, and must fail the open.
func TestMidFileCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, walName)
	content := `{"seq":1,"type":"epoch","edge":0}` + "\n" +
		"garbage\n" +
		`{"seq":2,"type":"epoch","edge":0}` + "\n"
	if err := os.WriteFile(wal, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, 0); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	var written []Entry
	for i := 0; i < 8; i++ {
		written = append(written, appendAll(t, l, Entry{Type: EntryEpoch})...)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// 8 appends with snapshotEvery=3: compactions at 3 and 6, so the
	// snapshot holds 6 entries and the live WAL 2.
	snap, _, err := readEntries(filepath.Join(dir, snapName), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 6 {
		t.Errorf("snapshot entries = %d, want 6", len(snap))
	}
	wal, _, err := readEntries(filepath.Join(dir, walName), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(wal) != 2 {
		t.Errorf("live wal entries = %d, want 2", len(wal))
	}

	_, replayed, err := Open(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, written) {
		t.Fatalf("replay after compaction: %+v\nwant %+v", replayed, written)
	}
}

// TestStaleWALAfterCrashedCompaction simulates a crash between the
// snapshot rename and the WAL truncate: the WAL still holds entries the
// snapshot already absorbed. Open must drop the stale segment.
func TestStaleWALAfterCrashedCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	written := appendAll(t, l,
		Entry{Type: EntryEpoch},
		Entry{Type: EntrySubmit, Job: NewJobEntry(testJob(1))},
	)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Hand-craft the crashed state: snapshot = full history, WAL intact.
	walBytes, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, replayed, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("open after crashed compaction: %v", err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(replayed, written) {
		t.Fatalf("replayed %+v, want %+v (stale WAL must be dropped)", replayed, written)
	}
	if e, err := l2.Append(Entry{Type: EntryEpoch}); err != nil || e.Seq != 3 {
		t.Fatalf("append after recovery: seq %d err %v, want seq 3", e.Seq, err)
	}
}

func TestSeqGapRejected(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, walName)
	content := `{"seq":1,"type":"epoch","edge":0}` + "\n" +
		`{"seq":3,"type":"epoch","edge":0}` + "\n"
	if err := os.WriteFile(wal, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, 0); err == nil {
		t.Fatal("seq gap accepted")
	}
}

// TestRenamedDirReopens is the regression test for the compaction
// durability fix: the snapshot rename (and the WAL segment creation)
// must be anchored by a directory fsync, and nothing in the log may
// depend on the directory's absolute path — a store directory renamed
// wholesale must reopen and replay bit-for-bit. The rename also forces
// the dirent metadata through the same path a post-power-loss remount
// would take.
func TestRenamedDirReopens(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "a")
	l, _, err := Open(dir, 2) // small: compaction (and its rename) must trigger
	if err != nil {
		t.Fatal(err)
	}
	written := appendAll(t, l,
		Entry{Type: EntrySubmit, Job: NewJobEntry(testJob(1))},
		Entry{Type: EntryEpoch},
		Entry{Type: EntryLeadership, Node: "n2", Token: 7, Reason: "elected"},
		Entry{Type: EntryEpoch},
		Entry{Type: EntryEpoch},
	)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName)); err != nil {
		t.Fatalf("snapshot missing after compaction: %v", err)
	}

	moved := filepath.Join(parent, "b")
	if err := os.Rename(dir, moved); err != nil {
		t.Fatal(err)
	}
	l2, replayed, err := Open(moved, 2)
	if err != nil {
		t.Fatalf("open renamed dir: %v", err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(replayed, written) {
		t.Fatalf("replay from renamed dir: %+v\nwant %+v", replayed, written)
	}
	if replayed[2].Type != EntryLeadership || replayed[2].Token != 7 || replayed[2].Node != "n2" {
		t.Fatalf("leadership entry did not round-trip: %+v", replayed[2])
	}
	if e, err := l2.Append(Entry{Type: EntryEpoch}); err != nil || e.Seq != 6 {
		t.Fatalf("append after rename: seq %d err %v, want seq 6", e.Seq, err)
	}
}

// TestAppendBatch covers the follower replication path: pre-sequenced
// entries land with one fsync, contiguity is enforced, and the batch
// participates in compaction and replay like any other appends.
func TestAppendBatch(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	local := appendAll(t, l, Entry{Type: EntryEpoch})
	batch := []Entry{
		{Seq: 2, Type: EntrySubmit, Job: NewJobEntry(testJob(9))},
		{Seq: 3, Type: EntryEpoch},
	}
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if l.Seq() != 3 {
		t.Errorf("seq after batch = %d, want 3", l.Seq())
	}
	// Gapped and overlapping batches are stream divergence: rejected
	// whole, nothing written.
	if err := l.AppendBatch([]Entry{{Seq: 5, Type: EntryEpoch}}); err == nil {
		t.Fatal("gapped batch accepted")
	}
	if err := l.AppendBatch([]Entry{{Seq: 3, Type: EntryEpoch}}); err == nil {
		t.Fatal("overlapping batch accepted")
	}
	if err := l.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, replayed, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]Entry{}, local...), batch...)
	if !reflect.DeepEqual(replayed, want) {
		t.Fatalf("replayed %+v\nwant %+v", replayed, want)
	}
}

func TestWipe(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, Entry{Type: EntryEpoch}, Entry{Type: EntryEpoch}, Entry{Type: EntryEpoch})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Wipe(dir); err != nil {
		t.Fatal(err)
	}
	_, replayed, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("wiped dir replayed %d entries", len(replayed))
	}
}

func TestClosedLogRejectsAppends(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Entry{Type: EntryEpoch}); err == nil {
		t.Fatal("append on a closed log accepted")
	}
	if err := l.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}
}

module wavesched

go 1.22

// Command netgen generates network topologies as JSON for use with the
// wavesched CLI.
//
// Usage:
//
//	netgen -topo waxman -nodes 100 -pairs 200 -waves 4 -seed 1 > net.json
//	netgen -topo abilene -waves 8 > abilene.json
//	netgen -topo abilene-dense -waves 8 > abilene20.json
//	netgen -topo scale400 > examples/scale/scale400.json
//	netgen -topo scale1000 > examples/scale/scale1000.json
//
// scale400 and scale1000 are the fixed scale-tier presets: Waxman graphs
// at 400 nodes / 800 link pairs (seed 10400) and 1000 nodes / 2000 link
// pairs (seed 11000), 4 wavelengths per 20 Gb/s link. The seeds are part
// of the preset, so regenerating always reproduces the committed
// examples/scale/ topologies byte for byte.
package main

import (
	"flag"
	"fmt"
	"os"

	"wavesched/internal/netgraph"
)

func main() {
	var (
		topo   = flag.String("topo", "waxman", "topology: waxman, abilene, abilene-dense, geant2, ring, line, grid, scale400, scale1000")
		nodes  = flag.Int("nodes", 100, "node count (waxman/ring/line); rows for grid")
		cols   = flag.Int("cols", 4, "columns (grid only)")
		pairs  = flag.Int("pairs", 200, "bidirectional link pairs (waxman)")
		waves  = flag.Int("waves", 4, "wavelengths per link")
		gbps   = flag.Float64("gbps", 20, "total link capacity in Gb/s")
		seed   = flag.Int64("seed", 1, "random seed (waxman)")
		format = flag.String("format", "json", "output format: json or brite")
		quiet  = flag.Bool("quiet", false, "suppress the stderr topology summary")
	)
	flag.Parse()

	perWave := *gbps / float64(*waves)
	var g *netgraph.Graph
	var err error
	switch *topo {
	case "waxman":
		g, err = netgraph.Waxman(netgraph.WaxmanConfig{
			Nodes: *nodes, LinkPairs: *pairs,
			Wavelengths: *waves, GbpsPerWave: perWave, Seed: *seed,
		})
	case "scale400":
		g, err = netgraph.Waxman(netgraph.ScalePreset400)
	case "scale1000":
		g, err = netgraph.Waxman(netgraph.ScalePreset1000)
	case "abilene":
		g = netgraph.Abilene(*waves)
	case "abilene-dense":
		g = netgraph.AbileneDense(*waves)
	case "geant2":
		g = netgraph.Geant2(*waves)
	case "ring":
		g = netgraph.Ring(*nodes, *waves, perWave)
	case "line":
		g = netgraph.Line(*nodes, *waves, perWave)
	case "grid":
		g = netgraph.Grid(*nodes, *cols, *waves, perWave)
	default:
		err = fmt.Errorf("unknown topology %q", *topo)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "netgen: %v\n", err)
		os.Exit(1)
	}
	switch *format {
	case "json":
		err = g.WriteJSON(os.Stdout)
	case "brite":
		err = g.WriteBRITE(os.Stdout)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "netgen: %v\n", err)
		os.Exit(1)
	}
	if !*quiet && g.NumEdges() > 0 {
		// Stdout is the topology itself (usually piped), so the summary —
		// what was actually generated — goes to stderr.
		fmt.Fprintf(os.Stderr, "netgen: %q: %d nodes, %d directed edges, %d wavelengths/link, %.1f Gb/s/link\n",
			g.Name, g.NumNodes(), g.NumEdges(), g.Edge(0).Wavelengths,
			g.Edge(0).GbpsPerWave*float64(g.Edge(0).Wavelengths))
	}
}

// Command benchfig regenerates the figures and tables of the paper's
// evaluation section.
//
// Usage:
//
//	benchfig -fig 1            # Fig. 1: throughput vs wavelengths, random net
//	benchfig -fig 2            # Fig. 2: the same on Abilene
//	benchfig -fig 3            # Fig. 3: computation time vs jobs
//	benchfig -fig 4            # Fig. 4 + §III-B.1: RET end times & fractions
//	benchfig -fig ret          # RET probe economy: certificate-pruned search
//	benchfig -fig decomp       # decomposition: mono vs per-component solves
//	benchfig -fig scale        # scale tier: K=8 enumeration vs column generation
//	benchfig -fig all          # everything
//	benchfig -fig 1 -quick     # reduced scale for a fast run
//	benchfig -fig 1 -csv       # CSV instead of aligned text
//	benchfig -quick -json BENCH_05.json   # machine-readable perf record
//
// Scale flags (-nodes, -pairs, -jobs, -slices, -k, -seeds) override the
// defaults, which match the paper (100 nodes, 200 link pairs, 20 Gb/s
// links, sizes U[1,100] GB). -monolithic disables structural instance
// decomposition, forcing the single coupled model per solve.
//
// -json writes a machine-readable report: per figure, the wall time of
// the sweep (ns/op) and its headline metrics, so successive runs track
// the performance trajectory of the solver stack. -baseline compares the
// fresh report against a committed one (e.g. BENCH_04.json) and exits
// nonzero when any shared figure's ns_per_op or lp_ms metric regressed
// by more than -max-regress percent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"wavesched/internal/experiments"
	"wavesched/internal/metrics"
	"wavesched/internal/telemetry"
)

// figReport is one figure's entry in the -json report.
type figReport struct {
	NsPerOp int64              `json:"ns_per_op"` // wall time of the full sweep
	Metrics map[string]float64 `json:"metrics"`   // headline metrics, as in bench_test.go
}

// benchReport is the -json output: the scale the figures ran at plus one
// timed entry per figure.
type benchReport struct {
	Scale   string               `json:"scale"` // "paper", "quick", or "custom"
	Nodes   int                  `json:"nodes"`
	Jobs    int                  `json:"jobs"`
	Seeds   int                  `json:"seeds"`
	Warm    bool                 `json:"warm"`
	Figures map[string]figReport `json:"figures"`
}

func main() {
	var (
		fig        = flag.String("fig", "all", "figure to regenerate: 1, 2, 3, 4, or all")
		quick      = flag.Bool("quick", false, "use the reduced quick scale")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		nodes      = flag.Int("nodes", 0, "override random-network node count")
		pairs      = flag.Int("pairs", 0, "override random-network link-pair count")
		jobs       = flag.Int("jobs", 0, "override job count")
		slices     = flag.Int("slices", 0, "override horizon slices")
		k          = flag.Int("k", 0, "override paths per job")
		seeds      = flag.String("seeds", "", "comma-separated replication seeds")
		waves      = flag.String("waves", "", "comma-separated wavelength sweep for figs 1-2")
		counts     = flag.String("counts", "", "comma-separated job-count sweep for figs 3-4")
		jsonOut    = flag.String("json", "", "write headline metrics and ns/op per figure to this file (e.g. BENCH_05.json)")
		mono       = flag.Bool("monolithic", false, "disable instance decomposition; solve every instance as one coupled model")
		baseline   = flag.String("baseline", "", "committed benchmark JSON to compare against (e.g. BENCH_04.json)")
		maxRegress = flag.Float64("max-regress", 20, "fail when ns_per_op or lp_ms regress by more than this percent vs -baseline")
		tracePath  = flag.String("trace", "", "write solver/scheduler trace spans (JSONL) to this file")
	)
	flag.Parse()

	sc := experiments.PaperScale()
	if *quick {
		sc = experiments.QuickScale()
	}
	if *tracePath != "" {
		tr, err := telemetry.OpenTraceFile(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := tr.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "benchfig: closing trace file: %v\n", err)
			}
		}()
		sc.Solver.Tracer = tr
	}
	if *nodes > 0 {
		sc.Nodes = *nodes
	}
	if *pairs > 0 {
		sc.LinkPairs = *pairs
	}
	if *jobs > 0 {
		sc.Jobs = *jobs
	}
	if *slices > 0 {
		sc.Slices = *slices
	}
	if *k > 0 {
		sc.K = *k
	}
	sc.Monolithic = *mono
	if *seeds != "" {
		sc.Seeds = nil
		for _, s := range strings.Split(*seeds, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				fatal("bad -seeds value %q: %v", s, err)
			}
			sc.Seeds = append(sc.Seeds, v)
		}
	}
	waveSweep := parseInts(*waves)
	countSweep := parseInts(*counts)

	render := func(t *metrics.Table) {
		var err error
		if *csv {
			err = t.RenderCSV(os.Stdout)
		} else {
			err = t.Render(os.Stdout)
			fmt.Println()
		}
		if err != nil {
			fatal("render: %v", err)
		}
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }

	scaleName := "paper"
	if *quick {
		scaleName = "quick"
	}
	if *nodes > 0 || *pairs > 0 || *jobs > 0 || *slices > 0 || *k > 0 || *seeds != "" {
		scaleName = "custom"
	}
	report := benchReport{
		Scale: scaleName, Nodes: sc.Nodes, Jobs: sc.Jobs,
		Seeds: len(sc.Seeds), Warm: sc.Warm,
		Figures: map[string]figReport{},
	}
	record := func(name string, elapsed time.Duration, m map[string]float64) {
		report.Figures[name] = figReport{NsPerOp: elapsed.Nanoseconds(), Metrics: m}
	}

	if want("1") {
		start := time.Now()
		rows, err := experiments.Fig1(sc, waveSweep)
		if err != nil {
			fatal("fig 1: %v", err)
		}
		record("fig1", time.Since(start), map[string]float64{
			"lpd_ratio_low_w":   rows[0].LPDRatio,
			"lpdar_ratio_low_w": rows[0].LPDARRatio,
			"lpd_ratio_high_w":  rows[len(rows)-1].LPDRatio,
		})
		render(experiments.ThroughputTable(
			"Fig. 1 — normalized throughput vs wavelengths per link (random network)", rows))
	}
	if want("2") {
		start := time.Now()
		rows, err := experiments.Fig2(sc, waveSweep)
		if err != nil {
			fatal("fig 2: %v", err)
		}
		record("fig2", time.Since(start), map[string]float64{
			"lpd_ratio_low_w":   rows[0].LPDRatio,
			"lpdar_ratio_low_w": rows[0].LPDARRatio,
		})
		render(experiments.ThroughputTable(
			"Fig. 2 — normalized throughput vs wavelengths per link (Abilene, 11 nodes / 20 pairs)", rows))
	}
	if want("3") {
		start := time.Now()
		rows, err := experiments.Fig3(sc, countSweep)
		if err != nil {
			fatal("fig 3: %v", err)
		}
		last := rows[len(rows)-1]
		record("fig3", time.Since(start), map[string]float64{
			"lp_ms":                   last.LPms,
			"integerize_overhead_pct": (last.LPDARms - last.LPms) / last.LPms * 100,
			"simplex_iters":           float64(last.SimplexIter),
		})
		render(experiments.TimeTable(
			"Fig. 3 — computation time vs number of jobs (random network)", rows))
	}
	if want("4") || want("ff") {
		start := time.Now()
		rows, err := experiments.Fig4(sc, countSweep, experiments.RETConfig{})
		if err != nil {
			fatal("fig 4: %v", err)
		}
		last := rows[len(rows)-1]
		record("fig4", time.Since(start), map[string]float64{
			"lp_ms":                last.LPms,
			"lp_avg_end_slices":    last.LPAvgEnd,
			"lpdar_avg_end_slices": last.LPDARAvgEnd,
			"b_hat":                last.BHat,
			"finished_lpdar":       last.FracLPDAR,
		})
		render(experiments.RETTable(
			"Fig. 4 + §III-B.1 — RET: average end time (slices) and fraction finished", rows))
	}
	if want("ret") && *fig != "all" {
		// Explicit selection only: this is the fig4 sweep again, re-run
		// under the probe-economy lens (how the binary search spent its
		// feasibility probes), so -fig all would time the same work twice.
		start := time.Now()
		rows, err := experiments.Fig4(sc, countSweep, experiments.RETConfig{})
		if err != nil {
			fatal("ret: %v", err)
		}
		elapsed := time.Since(start)
		last := rows[len(rows)-1]
		record("ret", elapsed, map[string]float64{
			"lp_ms":            last.LPms,
			"b_hat":            last.BHat,
			"probes_solved":    last.ProbesSolved,
			"probes_pruned":    last.ProbesPruned,
			"pivots_per_solve": last.PivotsPerSolve,
		})
		// The same sweep IS fig4, so record it under that key too: a
		// report written from -fig ret stays comparable (ns_per_op and
		// lp_ms) with baselines recorded before the ret lens existed.
		record("fig4", elapsed, map[string]float64{
			"lp_ms":                last.LPms,
			"lp_avg_end_slices":    last.LPAvgEnd,
			"lpdar_avg_end_slices": last.LPDARAvgEnd,
			"b_hat":                last.BHat,
			"finished_lpdar":       last.FracLPDAR,
		})
		render(experiments.RETTable(
			"RET probe economy — certificate-pruned search (fig. 4 sweep)", rows))
	}
	if want("admission") && *fig != "all" {
		// Explicit selection only: the sustained-load half hammers a real
		// WAL with thousands of durable submissions, which would dominate
		// an -fig all run.
		// The load half always runs at the acceptance scale (5000 queued
		// jobs, 32 writers) — it takes seconds, and a fixed scale keeps
		// -quick gate runs comparable with the committed baseline.
		start := time.Now()
		res, err := experiments.AdmissionLoad(sc, 5000, 32)
		if err != nil {
			fatal("admission: %v", err)
		}
		record("admission", time.Since(start), map[string]float64{
			"jobs_per_sec":        res.BatchedPerSec,
			"jobs_per_sec_inline": res.InlinePerSec,
			"speedup_vs_mutex":    res.Speedup,
			"full_ms":             res.FullMs,
			"incr_ms":             res.IncrMs,
			"incr_cost_ratio":     res.IncrRatio,
			"components_reused":   float64(res.Reused),
		})
		render(experiments.AdmissionTable(
			"Admission — sustained-load intake throughput and incremental re-planning", res))
	}
	if want("scale") && *fig != "all" {
		// Explicit selection only: at paper scale this sweep builds full
		// K=8 Yen enumerations over the 400- and 1000-node preset
		// networks — exactly the cost column generation avoids — so it
		// would dominate an -fig all run.
		start := time.Now()
		rows, err := experiments.CompareScale(sc, nil)
		if err != nil {
			fatal("scale: %v", err)
		}
		last := rows[len(rows)-1]
		objOK := 1.0
		for _, r := range rows {
			if !r.ObjOK {
				objOK = 0
			}
		}
		record("scale", time.Since(start), map[string]float64{
			"lp_ms":           last.ColGenMs,
			"enum_ms":         last.EnumMs,
			"speedup_vs_enum": last.Speedup,
			"colgen_paths":    float64(last.ColGenPaths),
			"enum_paths":      float64(last.EnumPaths),
			"obj_ok":          objOK,
		})
		render(experiments.ScaleTable(
			"Scale tier — stage-1 wall clock, K=8 enumeration vs column generation", rows))
	}
	if want("decomp") {
		start := time.Now()
		rows, err := experiments.CompareDecomposition(sc, nil, experiments.RETConfig{})
		if err != nil {
			fatal("decomp: %v", err)
		}
		last := rows[len(rows)-1]
		match := 1.0
		for _, r := range rows {
			if !r.Match {
				match = 0
			}
		}
		record("decomp", time.Since(start), map[string]float64{
			"components":          float64(last.Components),
			"mono_ms":             last.MonoMs,
			"parallel_ms":         last.ParallelMs,
			"speedup_vs_mono":     last.Speedup,
			"speedup_serial_only": last.MonoMs / last.SerialMs,
			"all_match":           match,
		})
		render(experiments.DecompTable(
			"Decomposition — monolithic vs per-component RET solves (multi-cluster network)", rows))
	}
	if *fig == "ablation" {
		type sweep struct {
			title, m1, m2 string
			run           func() ([]experiments.AblationRow, error)
		}
		sweeps := []sweep{
			{"Ablation — fairness slack α", "LPDAR throughput", "min Z_i",
				func() ([]experiments.AblationRow, error) { return experiments.AblationAlpha(sc, nil) }},
			{"Ablation — paths per job", "Z*", "LPDAR throughput",
				func() ([]experiments.AblationRow, error) { return experiments.AblationPaths(sc, nil) }},
			{"Ablation — LPDAR pass variants", "ratio vs LP", "min Z_i",
				func() ([]experiments.AblationRow, error) { return experiments.AblationAdjust(sc) }},
			{"Ablation — simplex pricing", "iterations", "Z*",
				func() ([]experiments.AblationRow, error) { return experiments.AblationPricing(sc) }},
		}
		for _, s := range sweeps {
			rows, err := s.run()
			if err != nil {
				fatal("ablation: %v", err)
			}
			render(experiments.AblationTable(s.title, s.m1, s.m2, rows))
		}
	}
	if *fig == "gap" {
		n := 10
		if *quick {
			n = 4
		}
		rows, err := experiments.OptimalityGap(n, sc)
		if err != nil {
			fatal("gap: %v", err)
		}
		render(experiments.GapTable(
			"Beyond the paper — LPDAR vs proven integer optimum (branch and bound)", rows))
	}
	if *jsonOut != "" {
		if len(report.Figures) == 0 {
			fatal("-json: the selected -fig %q produces no timed figures", *fig)
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal("-json: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fatal("-json: %v", err)
		}
		fmt.Printf("wrote %s (%d figures)\n", *jsonOut, len(report.Figures))
	}
	if *baseline != "" {
		if err := compareBaseline(*baseline, report, *maxRegress); err != nil {
			fatal("%v", err)
		}
	}
}

// compareBaseline fails when any figure present in both the fresh report
// and the committed baseline regressed by more than maxPct percent on
// ns_per_op or on its lp_ms metric. Figures only one side has (new
// figures, or a baseline from a run with a different -fig selection) are
// skipped: the guard tracks trajectories, it does not pin the figure set.
func compareBaseline(path string, fresh benchReport, maxPct float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-baseline: %v", err)
	}
	var base benchReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("-baseline %s: %v", path, err)
	}
	if base.Scale != fresh.Scale || base.Nodes != fresh.Nodes || base.Jobs != fresh.Jobs {
		return fmt.Errorf("-baseline %s ran at scale %s/%d nodes/%d jobs, this run at %s/%d/%d: not comparable",
			path, base.Scale, base.Nodes, base.Jobs, fresh.Scale, fresh.Nodes, fresh.Jobs)
	}
	failed := false
	check := func(figName, metric string, old, new float64) {
		if old <= 0 {
			return
		}
		pct := (new - old) / old * 100
		status := "ok"
		if pct > maxPct {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("baseline %s/%s: %.3g -> %.3g (%+.1f%%, limit +%.0f%%) %s\n",
			figName, metric, old, new, pct, maxPct, status)
	}
	for name, fr := range fresh.Figures {
		br, ok := base.Figures[name]
		if !ok {
			continue
		}
		// Throughput harnesses (figures that publish jobs_per_sec) are
		// gated on that metric below; their wall time also includes a
		// deliberately-slow control path, so ns_per_op is not a signal.
		if _, isThroughput := br.Metrics["jobs_per_sec"]; !isThroughput {
			check(name, "ns_per_op", float64(br.NsPerOp), float64(fr.NsPerOp))
		}
		if oldMS, ok := br.Metrics["lp_ms"]; ok {
			if newMS, ok := fr.Metrics["lp_ms"]; ok {
				check(name, "lp_ms", oldMS, newMS)
			}
		}
		// Throughput metrics regress in the other direction: a DROP in
		// jobs/sec is the failure. Feed the check the inverted values so
		// the shared percent math applies.
		if oldTP, ok := br.Metrics["jobs_per_sec"]; ok && oldTP > 0 {
			if newTP, ok := fr.Metrics["jobs_per_sec"]; ok && newTP > 0 {
				check(name, "jobs_per_sec (inverted)", 1/oldTP, 1/newTP)
			}
		}
	}
	if failed {
		return fmt.Errorf("performance regressed beyond %.0f%% vs %s", maxPct, path)
	}
	return nil
}

func parseInts(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal("bad integer list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchfig: "+format+"\n", args...)
	os.Exit(1)
}

package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"wavesched/internal/admission"
	"wavesched/internal/cluster"
	"wavesched/internal/controller"
	"wavesched/internal/netgraph"
	"wavesched/internal/server"
	"wavesched/internal/telemetry"
)

// HTTP server hardening for the main API listener: a client that stalls
// mid-headers or parks an idle keep-alive connection cannot pin a
// handler goroutine (or a file descriptor) forever. Vars, not consts,
// so the slow-client test can shrink them to test scale.
var (
	serveReadHeaderTimeout = 5 * time.Second
	serveIdleTimeout       = 120 * time.Second
)

// serveOptions collects the `wavesched serve` flags.
type serveOptions struct {
	Addr          string
	NetPath       string
	Tau           time.Duration // wall-clock period; the virtual τ is Tau.Seconds()
	SliceLen      float64
	Policy        string
	K             int
	Alpha         float64
	BMax          float64
	Monolithic    bool
	WALDir        string
	SnapshotEvery int
	LogLevel      string
	TracePath     string
	FlightFrames  int
	FlightDir     string
	Incremental   bool

	// Admission subsystem (batched intake, tenant quotas, priority
	// classes). Enabled by default; -admission=false restores the
	// original inline per-request submit path.
	AdmissionOn   bool
	QuotasRaw     []string
	PriorityRaw   string
	RequireTenant bool
	Admission     *admission.Config

	// Cluster mode (enabled by -node-id).
	NodeID     string
	Advertise  string
	PeersRaw   string
	Peers      []cluster.Peer
	Quorum     int
	ClusterDir string
	LeaseTTL   time.Duration
}

// parseServeFlags parses the serve subcommand's argument list.
func parseServeFlags(args []string) (serveOptions, error) {
	var o serveOptions
	fs := flag.NewFlagSet("wavesched serve", flag.ContinueOnError)
	fs.StringVar(&o.Addr, "addr", ":8080", "HTTP listen address for the job API, /metrics, and /debug/pprof")
	fs.StringVar(&o.NetPath, "net", "", "network JSON (required)")
	fs.DurationVar(&o.Tau, "tau", 2*time.Second, "wall-clock scheduling period; one epoch runs per period, advancing the virtual clock by τ = the period in seconds")
	fs.Float64Var(&o.SliceLen, "slice-len", 1, "slice duration in virtual seconds (τ must be a multiple)")
	fs.StringVar(&o.Policy, "policy", "maxthroughput", "controller policy: maxthroughput, ret, or reject")
	fs.IntVar(&o.K, "k", 4, "allowed paths per job")
	fs.Float64Var(&o.Alpha, "alpha", 0.1, "stage-2 fairness slack")
	fs.Float64Var(&o.BMax, "bmax", 5, "RET extension ceiling")
	fs.BoolVar(&o.Monolithic, "monolithic", false, "disable instance decomposition; solve every instance as one coupled model")
	fs.StringVar(&o.WALDir, "wal", "", "directory for the durable WAL/snapshot log (empty = in-memory)")
	fs.IntVar(&o.SnapshotEvery, "snapshot-every", 1024, "compact the WAL into the snapshot after this many entries (0 = never)")
	fs.StringVar(&o.LogLevel, "log-level", "info", "log level: debug, info, warn, or error")
	fs.StringVar(&o.TracePath, "trace", "", "write solver/scheduler trace spans (JSONL) to this file")
	fs.IntVar(&o.FlightFrames, "flight-frames", 64, "epochs of full solve detail retained by the flight recorder (0 = off)")
	fs.StringVar(&o.FlightDir, "flight-dir", "", "directory for flight-recorder anomaly dumps (default: the WAL directory)")
	fs.BoolVar(&o.Incremental, "incremental", false, "re-plan incrementally: churn re-solves only its connected component, untouched components reuse their cached plans (byte-identical under deterministic pricing)")
	fs.BoolVar(&o.AdmissionOn, "admission", true, "route submissions through the batched admission subsystem (intake queue, tenant quotas, priority classes)")
	fs.Func("quota", "tenant policy as [tenant:]k=v pairs (rate, burst, max_jobs, max_demand); no tenant prefix sets the default policy; repeatable, e.g. -quota cms:rate=50,max_jobs=200 -quota rate=10", func(v string) error {
		o.QuotasRaw = append(o.QuotasRaw, v)
		return nil
	})
	fs.StringVar(&o.PriorityRaw, "priority", "", "priority-class weight multipliers as class=mult pairs, e.g. critical=8,standard=1,scavenger=0.125 (empty = built-in defaults)")
	fs.BoolVar(&o.RequireTenant, "require-tenant", false, "reject submissions whose tenant has no -quota entry (403)")
	fs.StringVar(&o.NodeID, "node-id", "", "cluster member name; enables HA cluster mode (requires -cluster-dir, -advertise, -wal)")
	fs.StringVar(&o.Advertise, "advertise", "", "base URL peers and redirected clients reach this node at, e.g. http://10.0.0.1:8080")
	fs.StringVar(&o.PeersRaw, "peers", "", "other cluster members as id=url pairs, comma-separated: n2=http://host2:8080,n3=http://host3:8080")
	fs.IntVar(&o.Quorum, "quorum", 0, "members (counting this node) that must fsync a write before it is acknowledged; 0 = majority")
	fs.StringVar(&o.ClusterDir, "cluster-dir", "", "shared directory holding the leader lease record")
	fs.DurationVar(&o.LeaseTTL, "lease-ttl", 3*time.Second, "leader lease duration; bounds failover time")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.NetPath == "" {
		return o, fmt.Errorf("serve: -net is required")
	}
	if o.Tau <= 0 {
		return o, fmt.Errorf("serve: -tau must be positive")
	}
	if o.AdmissionOn {
		acfg, err := buildAdmissionConfig(o)
		if err != nil {
			return o, err
		}
		o.Admission = acfg
	} else if len(o.QuotasRaw) > 0 || o.PriorityRaw != "" || o.RequireTenant {
		return o, fmt.Errorf("serve: -quota/-priority/-require-tenant need the admission subsystem (-admission=true)")
	}
	if o.NodeID != "" {
		if o.ClusterDir == "" {
			return o, fmt.Errorf("serve: cluster mode requires -cluster-dir (shared lease directory)")
		}
		if o.WALDir == "" {
			return o, fmt.Errorf("serve: cluster mode requires -wal (per-node log directory)")
		}
		if o.Advertise == "" {
			return o, fmt.Errorf("serve: cluster mode requires -advertise")
		}
		peers, err := parsePeers(o.PeersRaw, o.NodeID)
		if err != nil {
			return o, err
		}
		o.Peers = peers
	} else if o.PeersRaw != "" || o.ClusterDir != "" {
		return o, fmt.Errorf("serve: -peers/-cluster-dir require -node-id (cluster mode)")
	}
	return o, nil
}

// buildAdmissionConfig assembles the admission subsystem's policy from
// the -quota/-priority/-require-tenant flags.
func buildAdmissionConfig(o serveOptions) (*admission.Config, error) {
	cfg := &admission.Config{RequireTenant: o.RequireTenant}
	for _, raw := range o.QuotasRaw {
		tenant, tp, err := parseQuota(raw)
		if err != nil {
			return nil, err
		}
		if tenant == "" {
			cfg.Default = tp
			continue
		}
		if cfg.Tenants == nil {
			cfg.Tenants = make(map[string]admission.TenantPolicy)
		}
		cfg.Tenants[tenant] = tp
	}
	if o.PriorityRaw != "" {
		weights, err := parseClassWeights(o.PriorityRaw)
		if err != nil {
			return nil, err
		}
		cfg.ClassWeights = weights
	}
	return cfg, nil
}

// parseQuota decodes one -quota value: "[tenant:]k=v,k=v" with keys
// rate, burst, max_jobs, max_demand. An empty tenant names the default
// policy applied to unconfigured tenants.
func parseQuota(raw string) (string, admission.TenantPolicy, error) {
	tenant, spec := "", raw
	if i := strings.IndexByte(raw, ':'); i >= 0 {
		tenant, spec = raw[:i], raw[i+1:]
	}
	var tp admission.TenantPolicy
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return "", tp, fmt.Errorf("serve: bad -quota entry %q (want k=v)", part)
		}
		var err error
		switch k {
		case "rate":
			tp.RatePerSec, err = strconv.ParseFloat(v, 64)
		case "burst":
			tp.Burst, err = strconv.ParseFloat(v, 64)
		case "max_jobs":
			tp.MaxJobs, err = strconv.Atoi(v)
		case "max_demand":
			tp.MaxDemand, err = strconv.ParseFloat(v, 64)
		default:
			return "", tp, fmt.Errorf("serve: unknown -quota key %q (want rate, burst, max_jobs, or max_demand)", k)
		}
		if err != nil {
			return "", tp, fmt.Errorf("serve: bad -quota value %q: %v", part, err)
		}
	}
	return tenant, tp, nil
}

// parseClassWeights decodes the -priority value: "class=mult" pairs
// overriding the built-in stage-2 weight multipliers.
func parseClassWeights(raw string) (map[admission.Class]float64, error) {
	out := make(map[admission.Class]float64)
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("serve: bad -priority entry %q (want class=multiplier)", part)
		}
		class, err := admission.ParseClass(k)
		if err != nil {
			return nil, fmt.Errorf("serve: %v", err)
		}
		mult, err := strconv.ParseFloat(v, 64)
		if err != nil || mult <= 0 {
			return nil, fmt.Errorf("serve: bad -priority multiplier %q (want a positive number)", part)
		}
		out[class] = mult
	}
	return out, nil
}

// parsePeers decodes "id=url,id=url", skipping this node's own entry so
// a cluster can share one -peers value across members.
func parsePeers(raw, self string) ([]cluster.Peer, error) {
	if raw == "" {
		return nil, nil
	}
	var peers []cluster.Peer
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("serve: bad -peers entry %q (want id=url)", part)
		}
		if id == self {
			continue
		}
		peers = append(peers, cluster.Peer{ID: id, URL: strings.TrimSuffix(url, "/")})
	}
	return peers, nil
}

// loadServeGraph reads the topology named by the options.
func loadServeGraph(o serveOptions) (*netgraph.Graph, error) {
	nf, err := os.Open(o.NetPath)
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	if strings.HasSuffix(o.NetPath, ".brite") {
		return netgraph.ReadBRITE(nf, 0)
	}
	return netgraph.ReadJSON(nf)
}

// serverConfig maps the parsed options onto the serving layer's config.
func serverConfig(o serveOptions) (server.Config, error) {
	policy, err := parsePolicy(o.Policy)
	if err != nil {
		return server.Config{}, err
	}
	return server.Config{
		Controller: controller.Config{
			Tau: o.Tau.Seconds(), SliceLen: o.SliceLen, K: o.K,
			Alpha: o.Alpha, BMax: o.BMax, Policy: policy,
			Solver: lpOptions(), Tracer: tracer, Monolithic: o.Monolithic,
			Incremental: o.Incremental,
		},
		Period:        o.Tau,
		WALDir:        o.WALDir,
		SnapshotEvery: o.SnapshotEvery,
		FlightFrames:  o.FlightFrames,
		FlightDir:     o.FlightDir,
		Admission:     o.Admission,
	}, nil
}

// buildServer loads the topology and constructs the daemon core from the
// parsed options (shared by runServe and its tests).
func buildServer(o serveOptions) (*server.Server, *netgraph.Graph, error) {
	g, err := loadServeGraph(o)
	if err != nil {
		return nil, nil, err
	}
	cfg, err := serverConfig(o)
	if err != nil {
		return nil, nil, err
	}
	srv, err := server.New(g, cfg)
	if err != nil {
		return nil, nil, err
	}
	return srv, g, nil
}

// buildNode constructs a cluster member from the parsed options.
func buildNode(o serveOptions) (*cluster.Node, *netgraph.Graph, error) {
	g, err := loadServeGraph(o)
	if err != nil {
		return nil, nil, err
	}
	cfg, err := serverConfig(o)
	if err != nil {
		return nil, nil, err
	}
	cfg.WALDir = "" // the node owns the log; the server appends through it
	node, err := cluster.NewNode(g, cfg, cluster.Config{
		NodeID:        o.NodeID,
		AdvertiseURL:  strings.TrimSuffix(o.Advertise, "/"),
		Peers:         o.Peers,
		ClusterDir:    o.ClusterDir,
		WALDir:        o.WALDir,
		SnapshotEvery: o.SnapshotEvery,
		Quorum:        o.Quorum,
		LeaseTTL:      o.LeaseTTL,
	})
	if err != nil {
		return nil, nil, err
	}
	return node, g, nil
}

// runServe is the `wavesched serve` entry point: it runs the scheduler
// daemon until ctx is cancelled (SIGINT/SIGTERM in production), then
// shuts down gracefully — stop accepting HTTP, settle the in-flight
// commitment, release the WAL.
func runServe(ctx context.Context, w io.Writer, args []string) error {
	o, err := parseServeFlags(args)
	if err != nil {
		return err
	}
	if err := setupLogging(o.LogLevel); err != nil {
		return err
	}
	if o.TracePath != "" {
		tr, err := telemetry.OpenTraceFile(o.TracePath)
		if err != nil {
			return err
		}
		// Flush and close as part of graceful shutdown so the last epoch's
		// spans reach disk before the process exits.
		defer func() {
			if err := tr.Close(); err != nil {
				slog.Warn("serve: closing trace file", "err", err)
			}
		}()
		tracer = tr
		slog.Info("serve: tracing enabled", "file", o.TracePath)
	}
	var (
		srv     *server.Server
		node    *cluster.Node
		g       *netgraph.Graph
		handler http.Handler
	)
	if o.NodeID != "" {
		node, g, err = buildNode(o)
		if err != nil {
			return err
		}
		srv = node.Server()
		handler = node.Handler()
	} else {
		srv, g, err = buildServer(o)
		if err != nil {
			return err
		}
		handler = srv.Handler()
	}

	// SIGQUIT dumps the flight recorder without shutting down — the
	// operator's "what just happened" lever on a live daemon.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	go func() {
		for range quit {
			if path, err := srv.DumpFlight("sigquit"); err != nil {
				slog.Error("serve: flight-recorder dump failed", "err", err)
			} else if path != "" {
				slog.Info("serve: flight-recorder dump", "path", path)
			} else {
				slog.Info("serve: flight recorder disabled; nothing to dump")
			}
		}
	}()

	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Fprintf(w, "wavesched serve: %q (%d nodes, %d edges) on http://%s  τ=%s policy=%s",
		g.Name, g.NumNodes(), g.NumEdges(), ln.Addr(), o.Tau, o.Policy)
	if o.WALDir != "" {
		fmt.Fprintf(w, "  wal=%s", o.WALDir)
	}
	if o.NodeID != "" {
		fmt.Fprintf(w, "  node=%s peers=%d quorum=%d", o.NodeID, len(o.Peers), o.Quorum)
	}
	fmt.Fprintln(w)

	httpSrv := &http.Server{
		Handler: handler,
		// A stalled half-open connection (headers never finish) or a
		// parked idle keep-alive must not hold resources indefinitely.
		ReadHeaderTimeout: serveReadHeaderTimeout,
		IdleTimeout:       serveIdleTimeout,
	}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()
	loopDone := make(chan struct{})
	go func() { defer close(loopDone); _ = srv.Run(ctx) }()
	electDone := make(chan struct{})
	if node != nil {
		go func() { defer close(electDone); node.Run(ctx) }()
	} else {
		close(electDone)
	}

	var serveErr error
	select {
	case <-ctx.Done():
		slog.Info("serve: shutting down")
	case err := <-httpErr:
		serveErr = fmt.Errorf("serve: http: %w", err)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && serveErr == nil {
		serveErr = fmt.Errorf("serve: shutdown: %w", err)
	}
	<-loopDone
	<-electDone // a graceful leader exit releases the lease first
	var closeErr error
	if node != nil {
		closeErr = node.Close()
	} else {
		closeErr = srv.Close()
	}
	if closeErr != nil && serveErr == nil {
		serveErr = fmt.Errorf("serve: close: %w", closeErr)
	}
	return serveErr
}

// serveMain wires runServe to the process: signal-driven cancellation
// and fatal error reporting.
func serveMain(args []string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runServe(ctx, os.Stdout, args); err != nil {
		fatal("%v", err)
	}
}

package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wavesched/internal/controller"
	"wavesched/internal/netgraph"
	"wavesched/internal/server"
	"wavesched/internal/telemetry"
)

// serveOptions collects the `wavesched serve` flags.
type serveOptions struct {
	Addr          string
	NetPath       string
	Tau           time.Duration // wall-clock period; the virtual τ is Tau.Seconds()
	SliceLen      float64
	Policy        string
	K             int
	Alpha         float64
	BMax          float64
	Monolithic    bool
	WALDir        string
	SnapshotEvery int
	LogLevel      string
	TracePath     string
	FlightFrames  int
	FlightDir     string
}

// parseServeFlags parses the serve subcommand's argument list.
func parseServeFlags(args []string) (serveOptions, error) {
	var o serveOptions
	fs := flag.NewFlagSet("wavesched serve", flag.ContinueOnError)
	fs.StringVar(&o.Addr, "addr", ":8080", "HTTP listen address for the job API, /metrics, and /debug/pprof")
	fs.StringVar(&o.NetPath, "net", "", "network JSON (required)")
	fs.DurationVar(&o.Tau, "tau", 2*time.Second, "wall-clock scheduling period; one epoch runs per period, advancing the virtual clock by τ = the period in seconds")
	fs.Float64Var(&o.SliceLen, "slice-len", 1, "slice duration in virtual seconds (τ must be a multiple)")
	fs.StringVar(&o.Policy, "policy", "maxthroughput", "controller policy: maxthroughput, ret, or reject")
	fs.IntVar(&o.K, "k", 4, "allowed paths per job")
	fs.Float64Var(&o.Alpha, "alpha", 0.1, "stage-2 fairness slack")
	fs.Float64Var(&o.BMax, "bmax", 5, "RET extension ceiling")
	fs.BoolVar(&o.Monolithic, "monolithic", false, "disable instance decomposition; solve every instance as one coupled model")
	fs.StringVar(&o.WALDir, "wal", "", "directory for the durable WAL/snapshot log (empty = in-memory)")
	fs.IntVar(&o.SnapshotEvery, "snapshot-every", 1024, "compact the WAL into the snapshot after this many entries (0 = never)")
	fs.StringVar(&o.LogLevel, "log-level", "info", "log level: debug, info, warn, or error")
	fs.StringVar(&o.TracePath, "trace", "", "write solver/scheduler trace spans (JSONL) to this file")
	fs.IntVar(&o.FlightFrames, "flight-frames", 64, "epochs of full solve detail retained by the flight recorder (0 = off)")
	fs.StringVar(&o.FlightDir, "flight-dir", "", "directory for flight-recorder anomaly dumps (default: the WAL directory)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.NetPath == "" {
		return o, fmt.Errorf("serve: -net is required")
	}
	if o.Tau <= 0 {
		return o, fmt.Errorf("serve: -tau must be positive")
	}
	return o, nil
}

// buildServer loads the topology and constructs the daemon core from the
// parsed options (shared by runServe and its tests).
func buildServer(o serveOptions) (*server.Server, *netgraph.Graph, error) {
	policy, err := parsePolicy(o.Policy)
	if err != nil {
		return nil, nil, err
	}
	nf, err := os.Open(o.NetPath)
	if err != nil {
		return nil, nil, err
	}
	var g *netgraph.Graph
	if strings.HasSuffix(o.NetPath, ".brite") {
		g, err = netgraph.ReadBRITE(nf, 0)
	} else {
		g, err = netgraph.ReadJSON(nf)
	}
	nf.Close()
	if err != nil {
		return nil, nil, err
	}
	srv, err := server.New(g, server.Config{
		Controller: controller.Config{
			Tau: o.Tau.Seconds(), SliceLen: o.SliceLen, K: o.K,
			Alpha: o.Alpha, BMax: o.BMax, Policy: policy,
			Solver: lpOptions(), Tracer: tracer, Monolithic: o.Monolithic,
		},
		Period:        o.Tau,
		WALDir:        o.WALDir,
		SnapshotEvery: o.SnapshotEvery,
		FlightFrames:  o.FlightFrames,
		FlightDir:     o.FlightDir,
	})
	if err != nil {
		return nil, nil, err
	}
	return srv, g, nil
}

// runServe is the `wavesched serve` entry point: it runs the scheduler
// daemon until ctx is cancelled (SIGINT/SIGTERM in production), then
// shuts down gracefully — stop accepting HTTP, settle the in-flight
// commitment, release the WAL.
func runServe(ctx context.Context, w io.Writer, args []string) error {
	o, err := parseServeFlags(args)
	if err != nil {
		return err
	}
	if err := setupLogging(o.LogLevel); err != nil {
		return err
	}
	if o.TracePath != "" {
		tr, err := telemetry.OpenTraceFile(o.TracePath)
		if err != nil {
			return err
		}
		// Flush and close as part of graceful shutdown so the last epoch's
		// spans reach disk before the process exits.
		defer func() {
			if err := tr.Close(); err != nil {
				slog.Warn("serve: closing trace file", "err", err)
			}
		}()
		tracer = tr
		slog.Info("serve: tracing enabled", "file", o.TracePath)
	}
	srv, g, err := buildServer(o)
	if err != nil {
		return err
	}

	// SIGQUIT dumps the flight recorder without shutting down — the
	// operator's "what just happened" lever on a live daemon.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	go func() {
		for range quit {
			if path, err := srv.DumpFlight("sigquit"); err != nil {
				slog.Error("serve: flight-recorder dump failed", "err", err)
			} else if path != "" {
				slog.Info("serve: flight-recorder dump", "path", path)
			} else {
				slog.Info("serve: flight recorder disabled; nothing to dump")
			}
		}
	}()

	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Fprintf(w, "wavesched serve: %q (%d nodes, %d edges) on http://%s  τ=%s policy=%s",
		g.Name, g.NumNodes(), g.NumEdges(), ln.Addr(), o.Tau, o.Policy)
	if o.WALDir != "" {
		fmt.Fprintf(w, "  wal=%s", o.WALDir)
	}
	fmt.Fprintln(w)

	httpSrv := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()
	loopDone := make(chan struct{})
	go func() { defer close(loopDone); _ = srv.Run(ctx) }()

	var serveErr error
	select {
	case <-ctx.Done():
		slog.Info("serve: shutting down")
	case err := <-httpErr:
		serveErr = fmt.Errorf("serve: http: %w", err)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && serveErr == nil {
		serveErr = fmt.Errorf("serve: shutdown: %w", err)
	}
	<-loopDone
	if err := srv.Close(); err != nil && serveErr == nil {
		serveErr = fmt.Errorf("serve: close: %w", err)
	}
	return serveErr
}

// serveMain wires runServe to the process: signal-driven cancellation
// and fatal error reporting.
func serveMain(args []string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runServe(ctx, os.Stdout, args); err != nil {
		fatal("%v", err)
	}
}

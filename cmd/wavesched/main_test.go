package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wavesched/internal/controller"
	"wavesched/internal/job"
	"wavesched/internal/lp"
	"wavesched/internal/netgraph"
	"wavesched/internal/schedule"
	"wavesched/internal/sim"
	"wavesched/internal/telemetry"
	"wavesched/internal/telemetry/telhttp"
	"wavesched/internal/timeslice"
)

// quickstartJobs mirrors the README quickstart scenario.
func quickstartJobs() []job.Job {
	return []job.Job{
		{ID: 1, Src: 0, Dst: 3, Size: 12, Start: 0, End: 6},
		{ID: 2, Src: 1, Dst: 4, Size: 8, Start: 2, End: 8},
	}
}

// runQuickstart exercises the full pipeline (stage 1, stage 2, LPDAR, and
// a controller+sim run) so every instrumented layer registers and updates
// its metrics on the default registry.
func runQuickstart(t *testing.T, tracer *telemetry.Tracer) {
	t.Helper()
	g := netgraph.Ring(6, 4, 5)
	grid, err := timeslice.Uniform(0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := schedule.NewInstance(g, grid, quickstartJobs(), 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := schedule.MaxThroughput(inst, schedule.Config{
		Alpha: 0.1, AlphaGrowth: 0.1, Solver: lp.Options{Tracer: tracer},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ZStar <= 0 {
		t.Fatalf("ZStar = %g", res.ZStar)
	}
	ctrl, err := controller.New(g, controller.Config{
		Tau: 2, SliceLen: 1, K: 4, Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(ctrl, quickstartJobs(), 0); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsEndpoint is the acceptance check for --metrics-addr: after a
// quickstart-sized run, the handler behind the flag serves Prometheus
// text format including the headline series from every layer.
func TestMetricsEndpoint(t *testing.T) {
	runQuickstart(t, nil)

	srv := httptest.NewServer(telhttp.Handler(telemetry.Default()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE lp_solve_seconds histogram",
		"lp_solve_seconds_count",
		"lp_pivots_total",
		"lp_phase1_pivots_total",
		"# TYPE controller_epoch_seconds histogram",
		"controller_epoch_seconds_count",
		"controller_jobs_admitted_total",
		"lpdar_adjustments_total",
		"schedule_stage1_zstar",
		"sim_event_queue_depth",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in /metrics output", want)
		}
	}

	// pprof rides on the same mux.
	pr, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/cmdline: %s", pr.Status)
	}
}

// TestTraceProducesParseableJSONL is the acceptance check for --trace: a
// quickstart-sized run must emit JSONL spans that parse line by line and
// include the solver and controller span names.
func TestTraceProducesParseableJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, err := telemetry.OpenTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	runQuickstart(t, tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace has %d lines, expected several spans", len(lines))
	}
	names := map[string]bool{}
	for i, line := range lines {
		var rec struct {
			TS   string `json:"ts"`
			Kind string `json:"kind"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not parseable JSON: %v\n%s", i+1, err, line)
		}
		if rec.TS == "" || rec.Kind == "" || rec.Name == "" {
			t.Fatalf("line %d missing ts/kind/name: %s", i+1, line)
		}
		names[rec.Name] = true
	}
	for _, want := range []string{"lp.solve", "controller.epoch", "schedule.stage1"} {
		if !names[want] {
			t.Errorf("trace missing %q spans (saw %v)", want, names)
		}
	}
}

func TestSetupLogging(t *testing.T) {
	for _, lvl := range []string{"debug", "info", "warn", "error", "WARN"} {
		if err := setupLogging(lvl); err != nil {
			t.Errorf("setupLogging(%q): %v", lvl, err)
		}
	}
	if err := setupLogging("verbose"); err == nil {
		t.Error("setupLogging should reject unknown levels")
	}
}

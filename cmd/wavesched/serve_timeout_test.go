package main

import (
	"context"
	"net"
	"net/http"
	"regexp"
	"testing"
	"time"

	"wavesched/internal/netgraph"
)

// startServe boots runServe on an ephemeral port and returns the base
// URL once the startup line reports the bound address.
func startServe(t *testing.T, ctx context.Context, args []string) string {
	t.Helper()
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- runServe(ctx, &out, args) }()
	t.Cleanup(func() {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("runServe: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("runServe did not shut down")
		}
	})
	addrRe := regexp.MustCompile(`http://([0-9.]+:[0-9]+)`)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listen address in output: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeStalledConnectionClosed: a half-open client that never
// finishes its request headers must be cut off by ReadHeaderTimeout
// instead of holding its connection (and eventually the fd table)
// forever, and must not disturb well-behaved requests.
func TestServeStalledConnectionClosed(t *testing.T) {
	oldRH, oldIdle := serveReadHeaderTimeout, serveIdleTimeout
	serveReadHeaderTimeout, serveIdleTimeout = 150*time.Millisecond, time.Second
	t.Cleanup(func() { serveReadHeaderTimeout, serveIdleTimeout = oldRH, oldIdle })

	netPath := writeNetFixture(t, netgraph.Ring(4, 2, 10))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base := startServe(t, ctx, []string{"-net", netPath, "-addr", "127.0.0.1:0", "-tau", "50ms", "-slice-len", "0.05", "-k", "2"})

	// Stall mid-headers: open the connection, send an incomplete request
	// line, then go silent.
	conn, err := net.Dial("tcp", base[len("http://"):])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /v1/healthz HTTP/1.1\r\nHost: x")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("stalled connection received data without finishing headers")
	}
	// The server must hang up on its own, well before our 5s read
	// deadline would have fired.
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("stalled connection lived %s; ReadHeaderTimeout did not fire", elapsed)
	}

	// A well-behaved client is unaffected.
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz after stalled conn: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: code %d", resp.StatusCode)
	}
	cancel()
}

// Command wavesched runs the paper's scheduling algorithms on a scenario:
// a network topology (JSON from netgen) plus a job list (JSON array).
//
// Usage:
//
//	wavesched -net net.json -jobs jobs.json -algo maxthroughput -slices 10
//	wavesched -net net.json -jobs jobs.json -algo ret -bmax 5
//	wavesched -net net.json -gen 20 -gen-seed 7 -algo maxthroughput
//	wavesched -net net.json -gen 20 -algo sim -tau 2 -mtbf 50 -mttr 4 -max-time 100
//	wavesched serve -net net.json -addr :8080 -tau 2s -wal /var/lib/wavesched
//	wavesched explain -net net.json -gen 20 -policy ret -job 3
//	wavesched traceconv -in run.jsonl -out run.chrome.json
//
// With -gen N a random workload of N jobs is generated instead of -jobs.
// The tool prints Z*, per-job throughputs, and the integer LPDAR schedule
// summary; -verbose dumps the per-slice wavelength assignments.
//
// The serve subcommand runs the scheduler as a long-lived daemon: an
// HTTP JSON job API, a wall-clock epoch loop, and (with -wal) a durable
// event log replayed on restart. See DESIGN.md §9. -algo sim accepts
// -json to emit the run result in the daemon's wire format.
//
// The explain subcommand replays a scenario deterministically and prints
// one job's decision history (admission verdict, component membership,
// probe bounds, final outcome); traceconv converts a -trace JSONL file
// to Chrome trace_event JSON for chrome://tracing or Perfetto. See
// DESIGN.md §12.
//
// -algo sim drives the periodic controller (period -tau, policy -policy)
// over the workload. Link failures can be injected from a JSON trace
// (-fail-trace) or drawn from a seeded per-link exponential MTBF/MTTR
// process (-mtbf/-mttr/-fail-seed, bounded by -max-time); the run ends
// with a per-job disruption report.
//
// Observability flags:
//
//	-metrics-addr :9090   serve Prometheus text-format metrics on
//	                      /metrics and net/http/pprof on /debug/pprof/
//	-trace run.jsonl      write solver/scheduler spans as JSON Lines
//	-log-level debug      structured (log/slog) logging level
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"wavesched/internal/job"
	"wavesched/internal/lp"
	"wavesched/internal/metrics"
	"wavesched/internal/netgraph"
	"wavesched/internal/schedule"
	"wavesched/internal/telemetry"
	"wavesched/internal/telemetry/telhttp"
	"wavesched/internal/timeslice"
	"wavesched/internal/workload"
)

// tracer is the process-wide trace sink; nil (the default) disables
// span tracing throughout the solver and scheduler layers.
var tracer *telemetry.Tracer

func main() {
	// Subcommand dispatch before flag parsing: serve, explain, and
	// traceconv each carry their own flag set.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			serveMain(os.Args[2:])
			return
		case "explain":
			explainMain(os.Args[2:])
			return
		case "traceconv":
			traceconvMain(os.Args[2:])
			return
		}
	}
	var (
		netPath  = flag.String("net", "", "network JSON (required)")
		jobsPath = flag.String("jobs", "", "jobs JSON")
		gen      = flag.Int("gen", 0, "generate this many random jobs instead of -jobs")
		genSeed  = flag.Int64("gen-seed", 1, "workload seed for -gen")
		algo     = flag.String("algo", "maxthroughput", "algorithm: maxthroughput or ret")
		slices   = flag.Int("slices", 10, "horizon length in slices")
		sliceLen = flag.Float64("slice-len", 1, "slice duration")
		k        = flag.Int("k", 4, "allowed paths per job")
		alpha    = flag.Float64("alpha", 0.1, "stage-2 fairness slack")
		bmax     = flag.Float64("bmax", 5, "RET extension ceiling")
		warm     = flag.Bool("warm", false, "warm-start LP solves across repeated-solve loops (same schedules, fewer pivots)")
		mono     = flag.Bool("monolithic", false, "disable instance decomposition; solve every instance as one coupled model")
		colgen   = flag.Bool("colgen", false, "price path columns on demand (column generation) instead of enumerating -k paths upfront")
		verbose  = flag.Bool("verbose", false, "dump per-slice assignments")
		jsonOut  = flag.Bool("json", false, "emit the -algo sim result as JSON instead of text")

		tau       = flag.Float64("tau", 2, "scheduling period for -algo sim (multiple of -slice-len)")
		policy    = flag.String("policy", "maxthroughput", "controller policy for -algo sim: maxthroughput, ret, or reject")
		maxTime   = flag.Float64("max-time", 0, "stop the simulation at this virtual time (0 = run until drained)")
		failTrace = flag.String("fail-trace", "", "JSON link failure/repair trace to inject (-algo sim)")
		mtbf      = flag.Float64("mtbf", 0, "generate link failures with this mean time between failures (0 = off; -algo sim)")
		mttr      = flag.Float64("mttr", 1, "mean time to repair for generated failures (-algo sim)")
		failSeed  = flag.Int64("fail-seed", 1, "seed for the generated failure process (-algo sim)")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus) and /debug/pprof on this address, e.g. :9090")
		tracePath   = flag.String("trace", "", "write solver/scheduler trace events (JSONL) to this file")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, or error")
	)
	flag.Parse()

	if err := setupLogging(*logLevel); err != nil {
		fatal("%v", err)
	}
	if *metricsAddr != "" {
		_, addr, err := telhttp.ListenAndServe(*metricsAddr, telemetry.Default())
		if err != nil {
			fatal("%v", err)
		}
		slog.Info("telemetry endpoint up", "addr", addr.String(),
			"metrics", "/metrics", "pprof", "/debug/pprof/")
	}
	if *tracePath != "" {
		tr, err := telemetry.OpenTraceFile(*tracePath)
		if err != nil {
			fatal("%v", err)
		}
		defer func() {
			if err := tr.Close(); err != nil {
				slog.Warn("closing trace file", "err", err)
			}
		}()
		tracer = tr
		slog.Info("tracing enabled", "file", *tracePath)
	}

	if *netPath == "" {
		fatal("-net is required")
	}
	g := loadGraph(*netPath)
	jobs := loadJobs(g, *jobsPath, *gen, *genSeed, *slices, *sliceLen)

	if !(*algo == "sim" && *jsonOut) { // keep stdout pure JSON under -json
		fmt.Printf("network %q: %d nodes, %d directed edges, %d wavelengths/link\n",
			g.Name, g.NumNodes(), g.NumEdges(), g.Edge(0).Wavelengths)
		fmt.Printf("jobs: %d, total demand %.2f wavelength-slices\n\n", len(jobs), totalSize(jobs))
	}

	switch *algo {
	case "maxthroughput":
		runMaxThroughput(g, jobs, *slices, *sliceLen, *k, *alpha, *warm, *mono, *colgen, *verbose)
	case "ret":
		runRET(g, jobs, *sliceLen, *k, *bmax, *warm, *mono, *colgen, *verbose)
	case "admit":
		runAdmit(g, jobs, *slices, *sliceLen, *k)
	case "bottleneck":
		runBottleneck(g, jobs, *slices, *sliceLen, *k)
	case "sim":
		err := runSim(os.Stdout, g, jobs, simOptions{
			Tau: *tau, SliceLen: *sliceLen, K: *k, Alpha: *alpha, BMax: *bmax,
			Policy: *policy, MaxTime: *maxTime, JSON: *jsonOut, Warm: *warm, Monolithic: *mono,
			ColumnGen: *colgen,
			FailTrace: *failTrace, MTBF: *mtbf, MTTR: *mttr, FailSeed: *failSeed,
		})
		if err != nil {
			fatal("%v", err)
		}
	default:
		fatal("unknown -algo %q (want maxthroughput, ret, admit, bottleneck, or sim)", *algo)
	}
}

// runAdmit demonstrates the paper's action (i): reject-based admission
// control by arrival order with binary search on the feasible prefix.
func runAdmit(g *netgraph.Graph, jobs []job.Job, slices int, sliceLen float64, k int) {
	grid, err := timeslice.Uniform(0, sliceLen, slices)
	if err != nil {
		fatal("%v", err)
	}
	res, err := schedule.AdmitPrefix(g, grid, jobs, k, schedule.ByRequestTime, lpOptions())
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("admitted %d of %d jobs (Z* = %.3f over the admitted set, %d LP solves)\n\n",
		len(res.Admitted), len(jobs), res.ZStar, res.LPSolves)
	for _, j := range res.Admitted {
		fmt.Printf("  ADMIT  %s\n", j)
	}
	for _, j := range res.Rejected {
		fmt.Printf("  REJECT %s\n", j)
	}
}

// runBottleneck reports the links whose extra wavelengths would raise Z*.
func runBottleneck(g *netgraph.Graph, jobs []job.Job, slices int, sliceLen float64, k int) {
	grid, err := timeslice.Uniform(0, sliceLen, slices)
	if err != nil {
		fatal("%v", err)
	}
	inst, err := schedule.NewInstance(g, grid, jobs, k)
	if err != nil {
		fatal("%v", err)
	}
	bns, s1, err := schedule.BottleneckAnalysis(inst, lpOptions())
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("Z* = %.4f; %d binding capacity constraints\n\n", s1.ZStar, len(bns))
	t := metrics.NewTable("capacity shadow prices (top 15)", "link", "slice", "dZ*/dC", "valid cap range")
	for i, b := range bns {
		if i == 15 {
			break
		}
		e := g.Edge(b.Edge)
		t.AddRow(
			fmt.Sprintf("%s->%s", nodeLabel(g, e.From), nodeLabel(g, e.To)),
			fmt.Sprintf("%d", b.Slice),
			fmt.Sprintf("%.4f", b.ShadowPrice),
			fmt.Sprintf("[%.1f, %.1f]", b.CapRange.Lo, b.CapRange.Hi),
		)
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal("%v", err)
	}
}

// loadGraph reads a topology in netgen JSON or BRITE format; any failure
// is fatal.
func loadGraph(path string) *netgraph.Graph {
	nf, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	var g *netgraph.Graph
	if strings.HasSuffix(path, ".brite") {
		g, err = netgraph.ReadBRITE(nf, 0)
	} else {
		g, err = netgraph.ReadJSON(nf)
	}
	nf.Close()
	if err != nil {
		fatal("%v", err)
	}
	return g
}

// loadJobs reads the -jobs file or generates -gen random jobs over the
// graph; any failure is fatal.
func loadJobs(g *netgraph.Graph, jobsPath string, gen int, genSeed int64, slices int, sliceLen float64) []job.Job {
	var jobs []job.Job
	var err error
	switch {
	case gen > 0:
		jobs, err = workload.Generate(g, workload.Config{
			Jobs: gen, Seed: genSeed,
			GBToDemand: workload.GBToDemandFactor(g.Edge(0).GbpsPerWave, sliceLen*10),
			MinWindow:  float64(slices) * sliceLen / 2,
			MaxWindow:  float64(slices) * sliceLen,
		})
		if err != nil {
			fatal("generate workload: %v", err)
		}
	case jobsPath != "":
		jf, err := os.Open(jobsPath)
		if err != nil {
			fatal("%v", err)
		}
		jobs, err = job.ReadJSON(jf)
		jf.Close()
		if err != nil {
			fatal("%v", err)
		}
	default:
		fatal("provide -jobs or -gen")
	}
	return jobs
}

func nodeLabel(g *netgraph.Graph, v netgraph.NodeID) string {
	if name := g.Node(v).Name; name != "" {
		return name
	}
	return fmt.Sprintf("%d", v)
}

func lpOptions() lp.Options {
	return lp.Options{Pricing: lp.PartialDantzig, Tracer: tracer}
}

// setupLogging installs a text slog handler on stderr at the given level.
func setupLogging(level string) error {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
	return nil
}

func runMaxThroughput(g *netgraph.Graph, jobs []job.Job, slices int, sliceLen float64, k int, alpha float64, warm, mono, colgen, verbose bool) {
	grid, err := timeslice.Uniform(0, sliceLen, slices)
	if err != nil {
		fatal("%v", err)
	}
	inst, err := schedule.NewInstanceOpts(g, grid, jobs, schedule.InstanceOptions{K: k, ColumnGen: colgen})
	if err != nil {
		fatal("%v", err)
	}
	if colgen {
		stats, err := schedule.GeneratePaths(inst, schedule.ColGenConfig{Solver: lpOptions(), Alpha: alpha})
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("column generation: %d seed paths, %d priced in over %d rounds (%d solves)\n",
			stats.SeedPaths, stats.AddedPaths, stats.Rounds, stats.Solves)
	}
	res, err := schedule.MaxThroughput(inst, schedule.Config{
		Alpha: alpha, AlphaGrowth: 0.1, Solver: lpOptions(), WarmStart: warm,
		Monolithic: mono,
	})
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("Z* = %.4f  (%s)\n", res.ZStar, loadWord(res.ZStar))
	fmt.Printf("weighted throughput: LP %.4f  LPD %.4f  LPDAR %.4f\n",
		res.LP.WeightedThroughput(), res.LPD.WeightedThroughput(), res.LPDAR.WeightedThroughput())
	fmt.Printf("times: stage1 %v (%d iters)  stage2 %v (%d iters)  integerize %v\n",
		res.Stage1Time, res.Stage1Iters, res.Stage2Time, res.Stage2Iters,
		res.TruncateTime+res.AdjustTime)
	zs := make([]float64, inst.NumJobs())
	for idx := range zs {
		zs[idx] = res.LPDAR.Throughput(idx)
	}
	fmt.Printf("Z_i distribution (LPDAR): min %.3f  p50 %.3f  p90 %.3f  max %.3f\n\n",
		metrics.Min(zs), metrics.Percentile(zs, 50), metrics.Percentile(zs, 90), metrics.Max(zs))

	t := metrics.NewTable("per-job throughput Z_i (LPDAR)", "job", "src->dst", "size", "Z_i", "delivered")
	for idx, j := range inst.Jobs {
		t.AddRow(
			fmt.Sprintf("%d", j.ID),
			fmt.Sprintf("%d->%d", j.Src, j.Dst),
			fmt.Sprintf("%.2f", j.Size),
			fmt.Sprintf("%.3f", res.LPDAR.Throughput(idx)),
			fmt.Sprintf("%.2f", res.LPDAR.Transferred(idx)),
		)
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal("%v", err)
	}
	if verbose {
		dumpAssignment(res.LPDAR)
	}
}

func runRET(g *netgraph.Graph, jobs []job.Job, sliceLen float64, k int, bmax float64, warm, mono, colgen, verbose bool) {
	inst, err := schedule.BuildRETInstanceOpts(g, jobs, sliceLen, k, bmax, schedule.InstanceOptions{K: k, ColumnGen: colgen})
	if err != nil {
		fatal("%v", err)
	}
	if colgen {
		stats, err := schedule.GeneratePaths(inst, schedule.ColGenConfig{
			Solver: lpOptions(), RET: &schedule.RETConfig{BMax: bmax, Solver: lpOptions()},
		})
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("column generation: %d seed paths, %d priced in over %d rounds (%d solves)\n",
			stats.SeedPaths, stats.AddedPaths, stats.Rounds, stats.Solves)
	}
	res, err := schedule.SolveRET(inst, schedule.RETConfig{BMax: bmax, Solver: lpOptions(), WarmStart: warm, Monolithic: mono})
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("b^ = %.4f (fractional minimum), final b = %.4f after %d δ-rounds\n", res.BHat, res.B, res.Rounds)
	lpEnd, _ := res.LP.AverageEndTime()
	darEnd, _ := res.LPDAR.AverageEndTime()
	fmt.Printf("fraction finished: LP %.2f  LPD %.2f  LPDAR %.2f\n",
		res.LP.FractionFinished(), res.LPD.FractionFinished(), res.LPDAR.FractionFinished())
	fmt.Printf("average end time (slices): LP %.2f  LPDAR %.2f\n", lpEnd, darEnd)
	var ends []float64
	for idx := range inst.Jobs {
		if fs, ok := res.LPDAR.FinishSlice(idx); ok {
			ends = append(ends, float64(fs+1))
		}
	}
	fmt.Printf("finish slice (LPDAR): p50 %.1f  p90 %.1f  max %.1f\n\n",
		metrics.Percentile(ends, 50), metrics.Percentile(ends, 90), metrics.Max(ends))

	t := metrics.NewTable("per-job completion (LPDAR)", "job", "src->dst", "size", "orig end", "new end", "finish slice")
	for idx, j := range inst.Jobs {
		fs, ok := res.LPDAR.FinishSlice(idx)
		finish := "-"
		if ok {
			finish = fmt.Sprintf("%d", fs+1)
		}
		t.AddRow(
			fmt.Sprintf("%d", j.ID),
			fmt.Sprintf("%d->%d", j.Src, j.Dst),
			fmt.Sprintf("%.2f", j.Size),
			fmt.Sprintf("%.2f", j.End),
			fmt.Sprintf("%.2f", inst.Grid.ExtendFactor(j.End, res.B)),
			finish,
		)
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal("%v", err)
	}
	if verbose {
		dumpAssignment(res.LPDAR)
	}
}

func dumpAssignment(a *schedule.Assignment) {
	fmt.Println("\nper-slice wavelength assignments (job/path/slice -> wavelengths):")
	for kIdx := range a.X {
		for p := range a.X[kIdx] {
			for j, v := range a.X[kIdx][p] {
				if v > 0 {
					fmt.Printf("  job %d path %d slice %d: %.0f\n", a.Inst.Jobs[kIdx].ID, p, j, v)
				}
			}
		}
	}
}

func totalSize(jobs []job.Job) float64 {
	t := 0.0
	for _, j := range jobs {
		t += j.Size
	}
	return t
}

func loadWord(z float64) string {
	if z <= 1 {
		return "overloaded"
	}
	return "underloaded"
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "wavesched: "+format+"\n", args...)
	os.Exit(1)
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"wavesched/internal/netgraph"
)

// The cluster e2e re-execs this test binary as real daemon processes so
// the leader can be killed with an actual SIGKILL. TestMain routes the
// child invocations into runServe and everything else into the tests.
const (
	e2eChildEnv = "WAVESCHED_E2E_CHILD"
	e2eArgsEnv  = "WAVESCHED_E2E_ARGS"
	e2eGateEnv  = "WAVESCHED_CLUSTER_E2E"
	e2eArgsSep  = "\x1f"
)

func TestMain(m *testing.M) {
	if os.Getenv(e2eChildEnv) == "1" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		args := strings.Split(os.Getenv(e2eArgsEnv), e2eArgsSep)
		if err := runServe(ctx, os.Stdout, args); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// e2eProc is one real daemon process in the test cluster.
type e2eProc struct {
	id   string
	url  string
	cmd  *exec.Cmd
	dead bool
}

func (p *e2eProc) healthz(t *testing.T) (map[string]any, error) {
	t.Helper()
	resp, err := http.Get(p.url + "/v1/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// freePorts grabs n distinct ephemeral ports. The listeners are closed
// before the children start, so a tiny reuse race exists; the children
// fail loudly if they lose it.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	var lns []net.Listener
	var ports []int
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
	}
	for _, ln := range lns {
		ln.Close()
	}
	return ports
}

// TestClusterProcessE2E is the deployment-shaped acceptance test: three
// real daemon processes, a real SIGKILL of the leader, a follower
// takeover, byte-identical replayed job state on the survivor, new
// writes accepted, and the replication metrics visible on /metrics.
// Gated behind WAVESCHED_CLUSTER_E2E=1 (run via `make cluster-test`) so
// plain `go test ./...` stays hermetic and fast.
func TestClusterProcessE2E(t *testing.T) {
	if os.Getenv(e2eGateEnv) == "" {
		t.Skip("set WAVESCHED_CLUSTER_E2E=1 (or run `make cluster-test`) to run the process-level cluster e2e")
	}

	base := t.TempDir()
	netPath := writeNetFixture(t, netgraph.Ring(4, 2, 10))
	clusterDir := base + "/cluster"
	ports := freePorts(t, 3)

	var peerParts []string
	for i, port := range ports {
		peerParts = append(peerParts, fmt.Sprintf("n%d=http://127.0.0.1:%d", i+1, port))
	}
	peers := strings.Join(peerParts, ",")

	procs := make(map[string]*e2eProc)
	for i, port := range ports {
		id := fmt.Sprintf("n%d", i+1)
		args := []string{
			"-net", netPath,
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-tau", "150ms", "-slice-len", "0.15", "-k", "2",
			"-node-id", id,
			"-advertise", fmt.Sprintf("http://127.0.0.1:%d", port),
			"-peers", peers,
			"-quorum", "2",
			"-cluster-dir", clusterDir,
			"-wal", fmt.Sprintf("%s/wal-%s", base, id),
			"-lease-ttl", "600ms",
			"-log-level", "warn",
			"-flight-frames", "0",
		}
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			e2eChildEnv+"=1", e2eArgsEnv+"="+strings.Join(args, e2eArgsSep))
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs[id] = &e2eProc{id: id, url: fmt.Sprintf("http://127.0.0.1:%d", port), cmd: cmd}
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if !p.dead {
				p.cmd.Process.Kill()
			}
			p.cmd.Wait()
		}
	})

	findLeader := func(timeout time.Duration) *e2eProc {
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			for _, p := range procs {
				if p.dead {
					continue
				}
				if h, err := p.healthz(t); err == nil && h["role"] == "leader" {
					return p
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		return nil
	}

	leader := findLeader(10 * time.Second)
	if leader == nil {
		t.Fatal("no leader elected")
	}

	// Two quick jobs; every write must reach the quorum before the ack.
	client := &http.Client{} // follows the 307 if we race a failover
	for i := 1; i <= 2; i++ {
		body := fmt.Sprintf(`{"id": %d, "src": %d, "dst": %d, "size": 0.5, "start": 0, "end": 100}`, i, i%4, (i+2)%4)
		resp, err := client.Post(leader.url+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: code %d body %s", i, resp.StatusCode, b)
		}
	}

	// Let the epoch loop run the jobs to completion so the state the
	// failover must reproduce is stable (the loop idles when drained).
	waitDrained := func(p *e2eProc) {
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(p.url + "/v1/stats")
			if err == nil {
				var st struct {
					Pending int `json:"pending"`
					Active  int `json:"active"`
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if json.Unmarshal(body, &st) == nil && st.Pending == 0 && st.Active == 0 {
					return
				}
			}
			time.Sleep(100 * time.Millisecond)
		}
		t.Fatal("jobs never drained")
	}
	waitDrained(leader)

	// Followers must hold the full log before the kill.
	lh, err := leader.healthz(t)
	if err != nil {
		t.Fatal(err)
	}
	leaderSeq := lh["wal_seq"].(float64)
	for _, p := range procs {
		if p == leader {
			continue
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			if h, err := p.healthz(t); err == nil && h["wal_seq"].(float64) >= leaderSeq {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never caught up to seq %v", p.id, leaderSeq)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	wantJobs := getBody(t, leader.url+"/v1/jobs")

	// The real thing: SIGKILL the leader process.
	if err := leader.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	leader.cmd.Wait()
	leader.dead = true

	newLeader := findLeader(10 * time.Second)
	if newLeader == nil {
		t.Fatal("no follower took over after SIGKILL")
	}
	if newLeader == leader {
		t.Fatal("dead leader still leads")
	}

	// The survivor serves the identical replayed job state...
	gotJobs := getBody(t, newLeader.url+"/v1/jobs")
	if !bytes.Equal(wantJobs, gotJobs) {
		t.Fatalf("job state diverged across failover:\nbefore: %s\nafter:  %s", wantJobs, gotJobs)
	}
	// ...and accepts new writes (quorum 2 of the surviving 2).
	resp, err := client.Post(newLeader.url+"/v1/jobs", "application/json",
		strings.NewReader(`{"id": 3, "src": 0, "dst": 2, "size": 0.5, "start": 0, "end": 100}`))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-failover submit: code %d body %s", resp.StatusCode, b)
	}

	// Replication instrumentation is live on the metrics endpoint.
	metrics := string(getBody(t, newLeader.url+"/metrics"))
	for _, want := range []string{
		"cluster_replication_lag_entries", "cluster_takeovers_total",
		"cluster_lease_renewals_total", "cluster_replication_entries_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
	if !strings.Contains(metrics, "cluster_takeovers_total 1") {
		t.Errorf("expected one takeover in metrics, got:\n%s", grepLines(metrics, "cluster_takeovers"))
	}
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: code %d body %s", url, resp.StatusCode, b)
	}
	return b
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

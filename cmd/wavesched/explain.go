package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"wavesched/internal/controller"
	"wavesched/internal/job"
	"wavesched/internal/metrics"
	"wavesched/internal/sim"
	"wavesched/internal/telemetry"
)

// explainOptions collects the `wavesched explain` flags.
type explainOptions struct {
	NetPath    string
	JobsPath   string
	Gen        int
	GenSeed    int64
	JobID      int
	Slices     int
	SliceLen   float64
	Tau        float64
	K          int
	Alpha      float64
	BMax       float64
	Policy     string
	MaxTime    float64
	Warm       bool
	Monolithic bool
	JSON       bool
	TracePath  string
}

// parseExplainFlags parses the explain subcommand's argument list.
func parseExplainFlags(args []string) (explainOptions, error) {
	var o explainOptions
	fs := flag.NewFlagSet("wavesched explain", flag.ContinueOnError)
	fs.StringVar(&o.NetPath, "net", "", "network JSON (required)")
	fs.StringVar(&o.JobsPath, "jobs", "", "jobs JSON")
	fs.IntVar(&o.Gen, "gen", 0, "generate this many random jobs instead of -jobs")
	fs.Int64Var(&o.GenSeed, "gen-seed", 1, "workload seed for -gen")
	fs.IntVar(&o.JobID, "job", -1, "job ID to explain (required)")
	fs.IntVar(&o.Slices, "slices", 10, "horizon length in slices (workload generation)")
	fs.Float64Var(&o.SliceLen, "slice-len", 1, "slice duration")
	fs.Float64Var(&o.Tau, "tau", 2, "scheduling period (multiple of -slice-len)")
	fs.IntVar(&o.K, "k", 4, "allowed paths per job")
	fs.Float64Var(&o.Alpha, "alpha", 0.1, "stage-2 fairness slack")
	fs.Float64Var(&o.BMax, "bmax", 5, "RET extension ceiling")
	fs.StringVar(&o.Policy, "policy", "maxthroughput", "controller policy: maxthroughput, ret, or reject")
	fs.Float64Var(&o.MaxTime, "max-time", 0, "stop the replay at this virtual time (0 = run until drained)")
	fs.BoolVar(&o.Warm, "warm", false, "warm-start LP solves across epochs")
	fs.BoolVar(&o.Monolithic, "monolithic", false, "disable instance decomposition")
	fs.BoolVar(&o.JSON, "json", false, "emit the explanation in the /v1/jobs/{id}/explain wire format")
	fs.StringVar(&o.TracePath, "trace", "", "also write the replay's trace spans (JSONL) to this file")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.NetPath == "" {
		return o, fmt.Errorf("explain: -net is required")
	}
	if o.JobID < 0 {
		return o, fmt.Errorf("explain: -job is required")
	}
	return o, nil
}

// runExplain replays the scenario through a fresh periodic controller —
// the controller's decisions are deterministic, so this reproduces the
// decision history exactly — and writes one job's explanation to w.
func runExplain(w io.Writer, o explainOptions) error {
	policy, err := parsePolicy(o.Policy)
	if err != nil {
		return err
	}
	g := loadGraph(o.NetPath)
	jobs := loadJobs(g, o.JobsPath, o.Gen, o.GenSeed, o.Slices, o.SliceLen)
	ctrl, err := controller.New(g, controller.Config{
		Tau: o.Tau, SliceLen: o.SliceLen, K: o.K, Alpha: o.Alpha, BMax: o.BMax,
		Policy: policy, Solver: lpOptions(), Tracer: tracer,
		WarmStart: o.Warm, Monolithic: o.Monolithic,
	})
	if err != nil {
		return err
	}
	if _, err := sim.Run(ctrl, jobs, o.MaxTime); err != nil {
		return err
	}
	exp, ok := ctrl.Explain(job.ID(o.JobID))
	if !ok {
		return fmt.Errorf("explain: job %d never reached the controller (IDs: %s)", o.JobID, idRange(jobs))
	}
	if o.JSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(exp.JSON())
	}
	fmt.Fprintf(w, "job %d: %d decision events\n\n", o.JobID, len(exp.Events))
	t := metrics.NewTable("decision history", "seq", "epoch", "t", "kind", "component", "bhat", "b", "detail")
	for _, ev := range exp.Events {
		comp, bhat, b := "-", "-", "-"
		if ev.Component != "" {
			comp = ev.Component
		}
		if ev.BHat != 0 {
			bhat = fmt.Sprintf("%.3f", ev.BHat)
		}
		if ev.B != 0 {
			b = fmt.Sprintf("%.3f", ev.B)
		}
		t.AddRow(
			fmt.Sprintf("%d", ev.Seq),
			fmt.Sprintf("%d", ev.Epoch),
			fmt.Sprintf("%.2f", ev.Time),
			ev.Kind, comp, bhat, b, ev.Detail,
		)
	}
	return t.Render(w)
}

// idRange summarizes the workload's job IDs for the not-found error.
func idRange(jobs []job.Job) string {
	if len(jobs) == 0 {
		return "none"
	}
	lo, hi := jobs[0].ID, jobs[0].ID
	for _, j := range jobs[1:] {
		if j.ID < lo {
			lo = j.ID
		}
		if j.ID > hi {
			hi = j.ID
		}
	}
	return fmt.Sprintf("%d..%d", lo, hi)
}

// explainMain is the `wavesched explain` entry point: it replays a
// scenario and prints the decision history of one job — every admission
// verdict, component assignment, probe bound, and final outcome the
// scheduler produced for it.
func explainMain(args []string) {
	o, err := parseExplainFlags(args)
	if err != nil {
		fatal("%v", err)
	}
	if o.TracePath != "" {
		tr, err := telemetry.OpenTraceFile(o.TracePath)
		if err != nil {
			fatal("%v", err)
		}
		defer func() {
			if err := tr.Close(); err != nil {
				slog.Warn("closing trace file", "err", err)
			}
		}()
		tracer = tr
	}
	if err := runExplain(os.Stdout, o); err != nil {
		fatal("%v", err)
	}
}

// traceconvMain is the `wavesched traceconv` entry point: it converts a
// JSONL trace file (written with -trace) to Chrome trace_event JSON
// loadable in chrome://tracing or ui.perfetto.dev.
func traceconvMain(args []string) {
	fs := flag.NewFlagSet("wavesched traceconv", flag.ContinueOnError)
	in := fs.String("in", "", "JSONL trace file written with -trace (required)")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		fatal("%v", err)
	}
	if *in == "" {
		fatal("traceconv: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	var w io.Writer = os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer func() {
			if err := of.Close(); err != nil {
				fatal("%v", err)
			}
		}()
		w = of
	}
	if err := telemetry.WriteChromeTrace(f, w); err != nil {
		fatal("traceconv: %v", err)
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
	"time"

	"wavesched/internal/job"
	"wavesched/internal/netgraph"
)

func TestParseServeFlags(t *testing.T) {
	o, err := parseServeFlags([]string{
		"-net", "x.json", "-addr", ":0", "-tau", "250ms", "-policy", "ret",
		"-wal", "/tmp/wal", "-snapshot-every", "16",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.NetPath != "x.json" || o.Tau != 250*time.Millisecond || o.Policy != "ret" ||
		o.WALDir != "/tmp/wal" || o.SnapshotEvery != 16 {
		t.Errorf("parsed options: %+v", o)
	}

	if _, err := parseServeFlags(nil); err == nil {
		t.Error("missing -net accepted")
	}
	if _, err := parseServeFlags([]string{"-net", "x.json", "-tau", "-1s"}); err == nil {
		t.Error("negative -tau accepted")
	}
	if _, err := parseServeFlags([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func writeNetFixture(t *testing.T, g *netgraph.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "net.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildServerRejectsBadOptions(t *testing.T) {
	net := writeNetFixture(t, netgraph.Ring(4, 2, 10))
	if _, _, err := buildServer(serveOptions{NetPath: net, Policy: "bogus"}); err == nil {
		t.Error("bogus policy accepted")
	}
	if _, _, err := buildServer(serveOptions{NetPath: "/no/such/file", Policy: "maxthroughput"}); err == nil {
		t.Error("missing network file accepted")
	}
}

// syncBuffer lets the test poll runServe's startup line while the serve
// goroutine is still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeEndToEnd boots the daemon on an ephemeral port, submits a job
// over HTTP, waits for the wall-clock loop to schedule it, and shuts
// down via context cancellation.
func TestServeEndToEnd(t *testing.T) {
	net := writeNetFixture(t, netgraph.Ring(4, 2, 10))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- runServe(ctx, &out, []string{
			"-net", net, "-addr", "127.0.0.1:0", "-tau", "20ms",
			"-slice-len", "0.02", "-k", "2",
		})
	}()

	// The startup line carries the bound address.
	addrRe := regexp.MustCompile(`http://([0-9.]+:[0-9]+)`)
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listen address in output: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(`{"src":0,"dst":2,"size":0.1,"start":0,"end":10}`)))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID    int    `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.State != "pending" {
		t.Fatalf("submit: status %d, body %+v", resp.StatusCode, sub)
	}

	// The epoch loop ticks every 20ms; wait for the job to leave pending.
	var health struct {
		Status string `json:"status"`
		Epochs int    `json:"epochs"`
	}
	for deadline = time.Now().Add(5 * time.Second); ; {
		resp, err := http.Get(base + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if health.Epochs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no epoch ran: %+v", health)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if health.Status != "ok" {
		t.Errorf("health status %q, want ok", health.Status)
	}

	// /metrics rides on the same listener.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !bytes.Contains(body.Bytes(), []byte("server_epoch_ticks_total")) {
		t.Error("/metrics missing server_epoch_ticks_total")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runServe: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runServe did not shut down")
	}
}

// TestRunSimJSON checks the -json sim output parses and carries the
// stable wire fields.
func TestRunSimJSON(t *testing.T) {
	g := netgraph.Line(2, 2, 10)
	jobs := []job.Job{
		{ID: 1, Arrival: 0, Src: 0, Dst: 1, Size: 4, Start: 0, End: 6},
		{ID: 2, Arrival: 0, Src: 1, Dst: 0, Size: 2, Start: 0, End: 4},
	}
	var buf bytes.Buffer
	err := runSim(&buf, g, jobs, simOptions{
		Tau: 1, SliceLen: 1, K: 1, Policy: "maxthroughput", JSON: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Epochs  int `json:"epochs"`
		Summary struct {
			Total     int `json:"total"`
			Completed int `json:"completed"`
		} `json:"summary"`
		Records []map[string]any `json:"records"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("decode -json output %q: %v", buf.String(), err)
	}
	if out.Summary.Total != 2 || out.Epochs == 0 {
		t.Errorf("summary %+v epochs %d", out.Summary, out.Epochs)
	}
	if len(out.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(out.Records))
	}
	for _, key := range []string{"job_id", "state", "delivered", "finish_time"} {
		if _, ok := out.Records[0][key]; !ok {
			t.Errorf("record missing %q: %v", key, out.Records[0])
		}
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wavesched/internal/job"
	"wavesched/internal/netgraph"
	"wavesched/internal/sim"
)

func TestParsePolicy(t *testing.T) {
	for _, s := range []string{"maxthroughput", "ret", "reject"} {
		if _, err := parsePolicy(s); err != nil {
			t.Errorf("parsePolicy(%q): %v", s, err)
		}
	}
	if _, err := parsePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestLoadFailures(t *testing.T) {
	g := netgraph.Line(2, 2, 10)

	// No trace and no MTBF: no failures.
	evs, err := loadFailures(g, simOptions{})
	if err != nil || evs != nil {
		t.Errorf("loadFailures(off) = %v, %v; want nil, nil", evs, err)
	}

	// Generated failures need -max-time.
	if _, err := loadFailures(g, simOptions{MTBF: 10, MTTR: 1}); err == nil {
		t.Error("generated failures without -max-time accepted")
	}
	evs, err = loadFailures(g, simOptions{MTBF: 3, MTTR: 1, FailSeed: 5, MaxTime: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Error("MTBF 3 over 50 time units generated no failures")
	}

	// Trace file path, including edge-range validation.
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.WriteLinkTrace(f, []sim.LinkEvent{{Time: 1, Edge: 0}}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	evs, err = loadFailures(g, simOptions{FailTrace: path})
	if err != nil || len(evs) != 1 {
		t.Errorf("loadFailures(trace) = %v, %v; want one event", evs, err)
	}

	bad := filepath.Join(dir, "bad.json")
	f, err = os.Create(bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.WriteLinkTrace(f, []sim.LinkEvent{{Time: 1, Edge: 99}}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := loadFailures(g, simOptions{FailTrace: bad}); err == nil {
		t.Error("trace with out-of-range edge accepted")
	}
}

func TestRunSimWithFailureTrace(t *testing.T) {
	g := netgraph.Line(2, 2, 10)
	jobs := []job.Job{
		{ID: 1, Arrival: 0, Src: 0, Dst: 1, Size: 8, Start: 0, End: 4},
		{ID: 2, Arrival: 4.5, Src: 0, Dst: 1, Size: 2, Start: 4.5, End: 10},
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	err = sim.WriteLinkTrace(f, []sim.LinkEvent{
		{Time: 1.5, Edge: 0, Up: false},
		{Time: 3.5, Edge: 0, Up: true},
	})
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err = runSim(&out, g, jobs, simOptions{
		Tau: 1, SliceLen: 1, K: 2, Policy: "maxthroughput", FailTrace: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"2 link events", "1 dropped by failures", "disruption report", "dropped"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunSimNoFailures(t *testing.T) {
	g := netgraph.Line(2, 2, 10)
	jobs := []job.Job{{ID: 1, Src: 0, Dst: 1, Size: 4, Start: 0, End: 4}}
	var out bytes.Buffer
	if err := runSim(&out, g, jobs, simOptions{
		Tau: 2, SliceLen: 1, K: 2, Policy: "maxthroughput",
	}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "1 completed") || strings.Contains(got, "disruption report") {
		t.Errorf("unexpected no-failure output:\n%s", got)
	}
}

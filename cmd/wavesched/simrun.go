package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"wavesched/internal/controller"
	"wavesched/internal/job"
	"wavesched/internal/metrics"
	"wavesched/internal/netgraph"
	"wavesched/internal/sim"
)

// simOptions collects the -algo sim flags.
type simOptions struct {
	Tau      float64
	SliceLen float64
	K        int
	Alpha    float64
	BMax     float64
	Policy   string
	MaxTime  float64
	JSON     bool // emit the run result as JSON instead of text
	Warm     bool // warm-start LP solves across epochs

	// Monolithic disables structural instance decomposition (the default
	// solve path splits independent job clusters into per-component LPs).
	Monolithic bool

	// ColumnGen prices path columns on demand instead of enumerating K
	// paths per job upfront.
	ColumnGen bool

	FailTrace string  // JSON link-event trace to inject
	MTBF      float64 // generate failures with this mean up-time (0 = off)
	MTTR      float64 // mean repair time for generated failures
	FailSeed  int64   // seed for the generated failure process
}

func parsePolicy(s string) (controller.Policy, error) {
	switch s {
	case "maxthroughput":
		return controller.PolicyMaxThroughput, nil
	case "ret":
		return controller.PolicyRET, nil
	case "reject":
		return controller.PolicyReject, nil
	}
	return 0, fmt.Errorf("unknown -policy %q (want maxthroughput, ret, or reject)", s)
}

// loadFailures builds the link failure trace: from a file when -fail-trace
// is given, from the seeded MTBF/MTTR process when -mtbf is set, or none.
func loadFailures(g *netgraph.Graph, o simOptions) ([]sim.LinkEvent, error) {
	if o.FailTrace != "" {
		f, err := os.Open(o.FailTrace)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		evs, err := sim.ReadLinkTrace(f)
		if err != nil {
			return nil, err
		}
		for i, ev := range evs {
			if int(ev.Edge) >= g.NumEdges() {
				return nil, fmt.Errorf("link trace event %d: edge %d outside the %d-edge network",
					i, ev.Edge, g.NumEdges())
			}
		}
		return evs, nil
	}
	if o.MTBF > 0 {
		if o.MaxTime <= 0 {
			return nil, fmt.Errorf("-mtbf needs -max-time to bound the generated failure trace")
		}
		return sim.GenerateFailures(g, sim.FailureConfig{
			MTBF: o.MTBF, MTTR: o.MTTR, Seed: o.FailSeed, MaxTime: o.MaxTime,
		})
	}
	return nil, nil
}

// runSim drives the periodic controller over the workload, optionally
// injecting link failures, and prints the run summary plus a disruption
// report.
func runSim(w io.Writer, g *netgraph.Graph, jobs []job.Job, o simOptions) error {
	policy, err := parsePolicy(o.Policy)
	if err != nil {
		return err
	}
	failures, err := loadFailures(g, o)
	if err != nil {
		return err
	}
	ctrl, err := controller.New(g, controller.Config{
		Tau: o.Tau, SliceLen: o.SliceLen, K: o.K, Alpha: o.Alpha,
		Policy: policy, BMax: o.BMax, Solver: lpOptions(), Tracer: tracer,
		WarmStart: o.Warm, Monolithic: o.Monolithic, ColumnGen: o.ColumnGen,
	})
	if err != nil {
		return err
	}
	res, err := sim.RunWithFailures(ctrl, jobs, failures, o.MaxTime)
	if err != nil {
		return err
	}
	if o.JSON {
		return writeSimJSON(w, ctrl, res)
	}

	s := res.Summary
	fmt.Fprintf(w, "simulated %d epochs to t=%.2f (τ=%g, policy %s, %d link events)\n",
		res.Epochs, res.EndTime, o.Tau, o.Policy, len(failures))
	fmt.Fprintf(w, "jobs: %d total, %d completed, %d on time, %d rejected, %d dropped by failures\n",
		s.Total, s.Completed, s.MetDeadline, s.Rejected, s.Disrupted)
	fmt.Fprintf(w, "delivered %.2f of %.2f requested wavelength-slices\n", s.Delivered, s.Requested)
	if s.Completed > 0 {
		fmt.Fprintf(w, "average finish time: %.2f\n", s.AvgFinish)
	}

	degraded := 0
	for _, ep := range ctrl.EpochStats() {
		if ep.Degraded {
			degraded++
		}
	}
	if degraded > 0 {
		fmt.Fprintf(w, "degraded epochs: %d of %d\n", degraded, res.Epochs)
	}
	if down := ctrl.DownLinks(); len(down) > 0 {
		fmt.Fprintf(w, "links still down at end of run: %v\n", down)
	}

	if len(res.Disruptions) > 0 {
		fmt.Fprintln(w)
		t := metrics.NewTable("disruption report", "job", "t", "link", "outcome")
		for _, d := range res.Disruptions {
			e := g.Edge(d.Edge)
			t.AddRow(
				fmt.Sprintf("%d", d.JobID),
				fmt.Sprintf("%.2f", d.Time),
				fmt.Sprintf("%s->%s", nodeLabel(g, e.From), nodeLabel(g, e.To)),
				d.Outcome.String(),
			)
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// simJSON is the -json shape of a sim run: the same wire types the serve
// daemon's API uses, so downstream tooling can consume either source.
type simJSON struct {
	Epochs      int                         `json:"epochs"`
	EndTime     float64                     `json:"end_time"`
	Summary     controller.SummaryJSON      `json:"summary"`
	Records     []controller.RecordJSON     `json:"records"`
	EpochStats  []controller.EpochStatJSON  `json:"epoch_stats"`
	Disruptions []controller.DisruptionJSON `json:"disruptions"`
}

func writeSimJSON(w io.Writer, ctrl *controller.Controller, res *sim.RunResult) error {
	recs := append([]controller.Record(nil), res.Records...)
	controller.SortRecordsByFinish(recs)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(simJSON{
		Epochs:      res.Epochs,
		EndTime:     res.EndTime,
		Summary:     res.Summary.JSON(),
		Records:     controller.RecordsJSON(recs),
		EpochStats:  controller.EpochStatsJSON(ctrl.EpochStats()),
		Disruptions: controller.DisruptionsJSON(res.Disruptions),
	})
}

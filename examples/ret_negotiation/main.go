// RET negotiation: an overloaded network cannot meet all requested end
// times, so instead of shrinking the transfers, the controller proposes
// extended deadlines via the Relaxing-End-Times algorithm (the paper's
// Algorithm 2) — the smallest common extension factor (1+b) under which
// every job completes in full.
package main

import (
	"fmt"
	"log"

	"wavesched/internal/job"
	"wavesched/internal/lp"
	"wavesched/internal/netgraph"
	"wavesched/internal/schedule"
)

func main() {
	// A deliberately overloaded scenario: a 50-node research network where
	// five sites each need to move large datasets within tight windows.
	g, err := netgraph.Waxman(netgraph.WaxmanConfig{
		Nodes: 50, LinkPairs: 100, Wavelengths: 2, GbpsPerWave: 10, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	jobs := []job.Job{
		{ID: 1, Src: 0, Dst: 30, Size: 20, Start: 0, End: 4},
		{ID: 2, Src: 5, Dst: 35, Size: 24, Start: 0, End: 5},
		{ID: 3, Src: 10, Dst: 40, Size: 16, Start: 1, End: 5},
		{ID: 4, Src: 15, Dst: 45, Size: 28, Start: 0, End: 6},
		{ID: 5, Src: 20, Dst: 49, Size: 18, Start: 2, End: 6},
	}

	// First check how overloaded the requested windows are.
	inst0, err := schedule.BuildRETInstance(g, jobs, 1, 4, 0)
	if err != nil {
		log.Fatal(err)
	}
	s1, err := schedule.SolveStage1(inst0, lp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("requested windows: Z* = %.3f — ", s1.ZStar)
	if s1.Overloaded() {
		fmt.Println("overloaded; only a fraction of each transfer would fit")
	} else {
		fmt.Println("feasible as requested")
	}

	// Negotiate: find the smallest (1+b) extension completing everything.
	inst, err := schedule.BuildRETInstance(g, jobs, 1, 4, 10)
	if err != nil {
		log.Fatal(err)
	}
	res, err := schedule.SolveRET(inst, schedule.RETConfig{BMax: 10})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nproposed extension: b = %.3f (fractional minimum b^ = %.3f, δ-rounds %d)\n",
		res.B, res.BHat, res.Rounds)
	fmt.Println("\nproposal to the users:")
	for k, j := range inst.Jobs {
		newEnd := inst.Grid.ExtendFactor(j.End, res.B)
		fs, ok := res.LPDAR.FinishSlice(k)
		status := "unscheduled"
		if ok {
			status = fmt.Sprintf("completes in slice %d", fs+1)
		}
		fmt.Printf("  job %d: end %.2f → %.2f (%s)\n", j.ID, j.End, newEnd, status)
	}

	fmt.Printf("\nfraction finished: LP %.2f, LPD %.2f, LPDAR %.2f\n",
		res.LP.FractionFinished(),
		res.LPD.FractionFinished(),
		res.LPDAR.FractionFinished())
	lpEnd, _ := res.LP.AverageEndTime()
	darEnd, _ := res.LPDAR.AverageEndTime()
	fmt.Printf("average end time (slices): LP %.2f vs LPDAR %.2f\n", lpEnd, darEnd)
}

// Maintenance windows: the paper's formulation supports time-varying link
// capacities C_e(j). This example schedules transfers across a planned
// outage — two fiber links lose all wavelengths for part of the horizon —
// and shows the optimizer routing around the outage in both space
// (alternate paths) and time (slices before/after the window).
package main

import (
	"fmt"
	"log"

	"wavesched/internal/job"
	"wavesched/internal/netgraph"
	"wavesched/internal/schedule"
	"wavesched/internal/timeslice"
)

func main() {
	const wavelengths = 4
	g := netgraph.AbileneDense(wavelengths)
	grid, err := timeslice.Uniform(0, 1, 8)
	if err != nil {
		log.Fatal(err)
	}

	jobs := []job.Job{
		{ID: 1, Src: 0, Dst: 10, Size: 10, Start: 0, End: 8}, // Seattle → NewYork
		{ID: 2, Src: 2, Dst: 9, Size: 8, Start: 0, End: 8},   // LosAngeles → WashingtonDC
		{ID: 3, Src: 5, Dst: 6, Size: 6, Start: 0, End: 8},   // Houston → Chicago
	}
	inst, err := schedule.NewInstance(g, grid, jobs, 6)
	if err != nil {
		log.Fatal(err)
	}

	// Planned outage: both directions of the KansasCity–Chicago link
	// (nodes 4 and 6) are dark during slices 2–4.
	outEdges := []netgraph.EdgeID{}
	for _, e := range g.Edges() {
		if (e.From == 4 && e.To == 6) || (e.From == 6 && e.To == 4) {
			outEdges = append(outEdges, e.ID)
		}
	}
	for _, eid := range outEdges {
		for s := 2; s <= 4; s++ {
			if err := inst.SetCapacity(eid, s, 0); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("outage: %d directed edges dark on slices 2-4\n\n", len(outEdges))

	res, err := schedule.MaxThroughput(inst, schedule.Config{Alpha: 0.1, AlphaGrowth: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Z* = %.3f with the outage in place\n", res.ZStar)
	for k, j := range inst.Jobs {
		fmt.Printf("job %d (%s → %s): Z = %.2f\n",
			j.ID, g.Node(j.Src).Name, g.Node(j.Dst).Name, res.LPDAR.Throughput(k))
	}

	// Confirm the dark slices carry nothing.
	loads := res.LPDAR.EdgeLoads()
	for _, eid := range outEdges {
		for s := 2; s <= 4; s++ {
			if loads[eid][s] != 0 {
				log.Fatalf("edge %d slice %d carries %g during the outage", eid, s, loads[eid][s])
			}
		}
	}
	fmt.Println("\nverified: zero wavelengths scheduled on dark links during the outage")

	fmt.Println("\nKansasCity-Chicago usage per slice (both directions):")
	for s := 0; s < grid.Num(); s++ {
		total := 0.0
		for _, eid := range outEdges {
			total += loads[eid][s]
		}
		marker := ""
		if s >= 2 && s <= 4 {
			marker = "  <- outage"
		}
		fmt.Printf("  slice %d: %.0f wavelengths%s\n", s, total, marker)
	}
}

// Abilene: schedule an e-science workload on the Internet2 Abilene
// backbone (the paper's Figure 2 setting: 11 nodes, 20 bidirectional
// link pairs, 20 Gb/s per link) and provision concrete lightpaths.
package main

import (
	"fmt"
	"log"

	"wavesched/internal/lightpath"
	"wavesched/internal/netgraph"
	"wavesched/internal/schedule"
	"wavesched/internal/timeslice"
	"wavesched/internal/workload"
)

func main() {
	const wavelengths = 8
	g := netgraph.AbileneDense(wavelengths)
	fmt.Printf("Abilene: %d nodes, %d directed edges, %d wavelengths × %.1f Gb/s per link\n\n",
		g.NumNodes(), g.NumEdges(), wavelengths, g.Edge(0).GbpsPerWave)

	// 12 slices of 10 seconds each; job sizes U[1,100] GB converted to
	// wavelength·slice demand units at 20/8 Gb/s per wavelength.
	grid, err := timeslice.Uniform(0, 1, 12)
	if err != nil {
		log.Fatal(err)
	}
	factor := workload.GBToDemandFactor(g.Edge(0).GbpsPerWave, 10)
	jobs, err := workload.Generate(g, workload.Config{
		Jobs: 15, Seed: 42, GBToDemand: factor,
		MinWindow: 6, MaxWindow: 12,
	})
	if err != nil {
		log.Fatal(err)
	}

	inst, err := schedule.NewInstance(g, grid, jobs, 6)
	if err != nil {
		log.Fatal(err)
	}
	res, err := schedule.MaxThroughput(inst, schedule.Config{Alpha: 0.1, AlphaGrowth: 0.1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Z* = %.3f; throughput LP %.3f, LPD %.3f, LPDAR %.3f\n",
		res.ZStar,
		res.LP.WeightedThroughput(),
		res.LPD.WeightedThroughput(),
		res.LPDAR.WeightedThroughput())
	fmt.Printf("solve time: stage 1 %v, stage 2 %v\n\n", res.Stage1Time, res.Stage2Time)

	for k, j := range inst.Jobs {
		src := g.Node(j.Src).Name
		dst := g.Node(j.Dst).Name
		fmt.Printf("job %2d %-14s → %-14s size %6.2f  Z=%.2f\n",
			j.ID, src, dst, j.Size, res.LPDAR.Throughput(k))
	}

	// Turn the integer schedule into per-slice lightpaths (full wavelength
	// conversion, as the paper's formulation assumes).
	plan, err := lightpath.Assign(res.LPDAR, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprovisioned %d lightpath-slices (blocking rate %.3f)\n",
		len(plan.Channels), plan.BlockingRate())
	bySlice := plan.ChannelsBySlice()
	for s := 0; s < grid.Num(); s++ {
		if chs := bySlice[s]; len(chs) > 0 {
			fmt.Printf("  slice %2d: %d active lightpaths\n", s, len(chs))
		}
	}
}

// Controller simulation: run the paper's periodic AC/scheduling framework
// (Section II-A) over a day's worth of Poisson job arrivals. Every τ time
// units the network controller collects the requests received since the
// previous instant, re-optimizes all unfinished transfers, and commits
// integer wavelength assignments.
package main

import (
	"fmt"
	"log"

	"wavesched/internal/controller"
	"wavesched/internal/netgraph"
	"wavesched/internal/sim"
	"wavesched/internal/workload"
)

func main() {
	g, err := netgraph.Waxman(netgraph.WaxmanConfig{
		Nodes: 40, LinkPairs: 80, Wavelengths: 4, GbpsPerWave: 5, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Poisson arrivals at 0.5 jobs per time unit, sizes U[1,100] GB.
	jobs, err := workload.Generate(g, workload.Config{
		Jobs: 30, Seed: 17, ArrivalRate: 0.5,
		GBToDemand: workload.GBToDemandFactor(5, 20),
		MinWindow:  6, MaxWindow: 12, StartSpread: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctrl, err := controller.New(g, controller.Config{
		Tau: 2, SliceLen: 1, K: 4, Alpha: 0.1,
		Policy: controller.PolicyMaxThroughput,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := sim.Run(ctrl, jobs, 500)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d epochs (τ=2), finished at t=%.0f\n\n", res.Epochs, res.EndTime)
	s := res.Summary
	fmt.Printf("jobs:          %d\n", s.Total)
	fmt.Printf("completed:     %d (%.0f%%)\n", s.Completed, 100*float64(s.Completed)/float64(s.Total))
	fmt.Printf("met deadline:  %d\n", s.MetDeadline)
	fmt.Printf("rejected:      %d\n", s.Rejected)
	fmt.Printf("delivered:     %.1f of %.1f wavelength-slices (%.0f%%)\n",
		s.Delivered, s.Requested, 100*s.Delivered/s.Requested)
	fmt.Printf("avg finish:    t=%.1f\n\n", s.AvgFinish)

	records := res.Records
	controller.SortRecordsByFinish(records)
	fmt.Println("first completions:")
	shown := 0
	for _, r := range records {
		if !r.Completed {
			continue
		}
		fmt.Printf("  job %2d: arrived %6.2f, window [%.2f, %.2f], finished %6.2f (on time: %v)\n",
			r.Job.ID, r.Job.Arrival, r.Job.Start, r.Job.End, r.FinishTime, r.MetDeadline)
		shown++
		if shown == 8 {
			break
		}
	}
}

// Quickstart: build a small wavelength-switched network, submit three bulk
// transfers with start/end-time requirements, and schedule them with the
// paper's two-stage algorithm (MCF stage 1 → fairness-constrained stage 2
// → LPDAR integerization).
package main

import (
	"fmt"
	"log"

	"wavesched/internal/job"
	"wavesched/internal/netgraph"
	"wavesched/internal/schedule"
	"wavesched/internal/timeslice"
)

func main() {
	// A 6-node ring; every link carries 4 wavelengths of 5 Gb/s each.
	g := netgraph.Ring(6, 4, 5)

	// Ten time slices of one unit each.
	grid, err := timeslice.Uniform(0, 1, 10)
	if err != nil {
		log.Fatal(err)
	}

	// Three transfer requests (A_i, s_i, d_i, D_i, S_i, E_i). Sizes are in
	// wavelength·slice units: one wavelength for one slice moves 1 unit.
	jobs := []job.Job{
		{ID: 1, Src: 0, Dst: 3, Size: 12, Start: 0, End: 6},
		{ID: 2, Src: 1, Dst: 4, Size: 8, Start: 2, End: 8},
		{ID: 3, Src: 5, Dst: 2, Size: 10, Start: 0, End: 10},
	}

	// Each job may use up to 4 loopless paths (a ring offers 2).
	inst, err := schedule.NewInstance(g, grid, jobs, 4)
	if err != nil {
		log.Fatal(err)
	}

	res, err := schedule.MaxThroughput(inst, schedule.Config{Alpha: 0.1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("maximum concurrent throughput Z* = %.3f\n", res.ZStar)
	if res.ZStar <= 1 {
		fmt.Println("the network is overloaded: demands are scaled down fairly")
	} else {
		fmt.Println("the network is underloaded: all demands fit with room to spare")
	}
	fmt.Printf("weighted throughput: LP %.3f, LPD %.3f, LPDAR %.3f\n\n",
		res.LP.WeightedThroughput(),
		res.LPD.WeightedThroughput(),
		res.LPDAR.WeightedThroughput())

	for k, j := range inst.Jobs {
		fmt.Printf("job %d (%d→%d, size %.0f): delivered %.0f units, Z=%.2f\n",
			j.ID, j.Src, j.Dst, j.Size,
			res.LPDAR.Transferred(k), res.LPDAR.Throughput(k))
	}

	// The integer schedule: wavelengths per (path, slice).
	fmt.Println("\ninteger wavelength assignments (LPDAR):")
	for k := range res.LPDAR.X {
		for p := range res.LPDAR.X[k] {
			for s, v := range res.LPDAR.X[k][p] {
				if v > 0 {
					fmt.Printf("  job %d, path %d, slice %d: %.0f wavelength(s)\n",
						inst.Jobs[k].ID, p, s, v)
				}
			}
		}
	}
}

// Package wavesched_bench holds the top-level benchmark harness: one
// testing.B benchmark per figure/table of the paper's evaluation, plus
// ablations for the design choices called out in DESIGN.md.
//
// The benchmarks run at QuickScale so `go test -bench=.` completes in
// minutes; cmd/benchfig runs the same experiments at the paper's full
// scale. Each benchmark reports the experiment's headline metric via
// b.ReportMetric alongside the usual ns/op.
package wavesched_bench

import (
	"io"
	"math/rand"
	"testing"

	"wavesched/internal/experiments"
	"wavesched/internal/job"
	"wavesched/internal/lp"
	"wavesched/internal/netgraph"
	"wavesched/internal/schedule"
	"wavesched/internal/telemetry"
	"wavesched/internal/timeslice"
	"wavesched/internal/workload"
)

// benchScale is the shared reduced scale for the harness.
func benchScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.Seeds = []int64{1}
	return sc
}

// BenchmarkFig1 regenerates Figure 1 (normalized throughput of LP, LPD,
// LPDAR vs wavelengths per link on a random Waxman network) and reports
// the W=2 and W=32 LPD/LPDAR ratios.
func BenchmarkFig1(b *testing.B) {
	sc := benchScale()
	var rows []experiments.ThroughputRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig1(sc, experiments.DefaultWavelengths)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].LPDRatio, "lpd_ratio_w2")
	b.ReportMetric(rows[0].LPDARRatio, "lpdar_ratio_w2")
	b.ReportMetric(rows[len(rows)-1].LPDRatio, "lpd_ratio_w32")
}

// BenchmarkFig2 regenerates Figure 2 (the same sweep on the Abilene
// backbone, 11 nodes / 20 link pairs).
func BenchmarkFig2(b *testing.B) {
	sc := benchScale()
	var rows []experiments.ThroughputRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig2(sc, experiments.DefaultWavelengths)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].LPDARRatio, "lpdar_ratio_w2")
	b.ReportMetric(rows[0].LPDRatio, "lpd_ratio_w2")
}

// BenchmarkFig3 regenerates Figure 3 (computation time of LP, LPD, LPDAR
// vs number of jobs) and reports the integerization overhead as a share of
// the LP solve — the paper's observation is that it is negligible.
func BenchmarkFig3(b *testing.B) {
	sc := benchScale()
	var rows []experiments.TimeRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig3(sc, []int{6, 12, 18})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.LPms, "lp_ms")
	b.ReportMetric((last.LPDARms-last.LPms)/last.LPms*100, "integerize_overhead_pct")
}

// BenchmarkFig4 regenerates Figure 4 (average end time of LP vs LPDAR
// after the RET algorithm, vs number of jobs, overloaded network).
func BenchmarkFig4(b *testing.B) {
	sc := benchScale()
	var rows []experiments.RETRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig4(sc, []int{4, 8}, experiments.RETConfig{BMax: 3, OverloadGBx: 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.LPAvgEnd, "lp_avg_end_slices")
	b.ReportMetric(last.LPDARAvgEnd, "lpdar_avg_end_slices")
	b.ReportMetric(last.LPms, "lp_ms")
}

// BenchmarkRETDecomposition measures the structural-decomposition speedup:
// the same overloaded multi-cluster RET instance solved as one coupled
// model versus split into per-cluster components solved on the worker
// pool. The component solves win twice — simplex cost grows superlinearly
// in model size, and independent components run concurrently — while
// producing the same b̂ and delivered throughput (see
// TestDecomposedMatchesMonolithicRET for the bit-level argument).
func BenchmarkRETDecomposition(b *testing.B) {
	sc := benchScale()
	sc.Jobs = 16
	sc.Nodes = 24
	var rows []experiments.DecompRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.CompareDecomposition(sc, []int{4}, experiments.RETConfig{})
		if err != nil {
			b.Fatal(err)
		}
	}
	r := rows[0]
	if !r.Match {
		b.Fatal("monolithic and decomposed solves disagree")
	}
	b.ReportMetric(float64(r.Components), "components")
	b.ReportMetric(r.MonoMs, "mono_ms")
	b.ReportMetric(r.SerialMs, "serial_ms")
	b.ReportMetric(r.ParallelMs, "parallel_ms")
	b.ReportMetric(r.Speedup, "speedup_vs_mono")
}

// retBenchInstance builds an overloaded QuickScale-sized RET instance
// whose binary search needs the full probe ladder (b̂ well above 0).
func retBenchInstance(b *testing.B) *schedule.Instance {
	b.Helper()
	const w = 4
	g, err := netgraph.Waxman(netgraph.WaxmanConfig{
		Nodes: 30, LinkPairs: 60, Wavelengths: w, GbpsPerWave: 20.0 / w, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := workload.Generate(g, workload.Config{
		Jobs: 12, Seed: 1001, GBToDemand: workload.GBToDemandFactor(20.0/w, 10),
		MinWindow: 3, MaxWindow: 6, StartSpread: 1.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := range jobs {
		jobs[i].Size *= 3 // overload: windows cannot hold the demand
	}
	inst, err := schedule.BuildRETInstance(g, jobs, 1, 4, 3)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// BenchmarkRETWarmVsCold measures the tentpole speedup: the RET binary
// search re-solved cold every round versus warm-started probes chaining a
// basis across rounds (and, like the controller's epoch loop, across
// iterations via ProbeBasis). Schedules are byte-identical either way —
// see TestSolveRETWarmByteIdentical.
func BenchmarkRETWarmVsCold(b *testing.B) {
	inst := retBenchInstance(b)
	cfg := schedule.RETConfig{BMax: 3, Solver: lp.Options{Pricing: lp.PartialDantzig}}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := schedule.SolveRET(inst, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.BHat == 0 {
				b.Fatal("instance not overloaded; probe ladder unexercised")
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		wcfg := cfg
		wcfg.WarmStart = true
		for i := 0; i < b.N; i++ {
			res, err := schedule.SolveRET(inst, wcfg)
			if err != nil {
				b.Fatal(err)
			}
			wcfg.WarmBasis = res.ProbeBasis // carry across epochs, like the controller
		}
	})
}

// BenchmarkTableFractionFinished regenerates the §III-B.1 comparison: the
// fraction of jobs finished by LP, LPD and LPDAR under the same extended
// end times (paper: LP = LPDAR = 1.0, LPD ≈ 0).
func BenchmarkTableFractionFinished(b *testing.B) {
	sc := benchScale()
	var rows []experiments.RETRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig4(sc, []int{8}, experiments.RETConfig{BMax: 3, OverloadGBx: 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].FracLP, "finished_lp")
	b.ReportMetric(rows[0].FracLPD, "finished_lpd")
	b.ReportMetric(rows[0].FracLPDAR, "finished_lpdar")
}

// ablationInstance builds a fixed moderately loaded instance for the
// ablation benchmarks.
func ablationInstance(b *testing.B, k int) *schedule.Instance {
	b.Helper()
	g, err := netgraph.Waxman(netgraph.WaxmanConfig{
		Nodes: 30, LinkPairs: 60, Wavelengths: 3, GbpsPerWave: 20.0 / 3, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	grid, err := timeslice.Uniform(0, 1, 8)
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := workload.Generate(g, workload.Config{
		Jobs: 15, Seed: 6, GBToDemand: workload.GBToDemandFactor(20.0/3, 10),
		MinWindow: 4, MaxWindow: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	inst, err := schedule.NewInstance(g, grid, jobs, k)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// BenchmarkAblationLPDAROrder compares the LPDAR greedy pass variants:
// the paper's verbatim input-order pass vs deficit-first vs demand-capped.
func BenchmarkAblationLPDAROrder(b *testing.B) {
	inst := ablationInstance(b, 4)
	res, err := schedule.MaxThroughput(inst, schedule.Config{Alpha: 0.1, AlphaGrowth: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name string
		opts schedule.AdjustOptions
	}{
		{"verbatim", schedule.VerbatimAdjust},
		{"deficit_first", schedule.AdjustOptions{Order: schedule.OrderDeficitFirst}},
		{"capped_deficit", schedule.RETAdjust},
	} {
		b.Run(v.name, func(b *testing.B) {
			var wt float64
			for i := 0; i < b.N; i++ {
				adj := schedule.AdjustRates(res.LPD, v.opts)
				wt = adj.WeightedThroughput()
			}
			b.ReportMetric(wt, "weighted_throughput")
			b.ReportMetric(wt/res.LP.WeightedThroughput(), "ratio_vs_lp")
		})
	}
}

// BenchmarkAblationAlpha sweeps the stage-2 fairness slack α.
func BenchmarkAblationAlpha(b *testing.B) {
	inst := ablationInstance(b, 4)
	for _, alpha := range []float64{0.01, 0.05, 0.1, 0.2, 0.5} {
		b.Run(alphaName(alpha), func(b *testing.B) {
			var res *schedule.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = schedule.MaxThroughput(inst, schedule.Config{Alpha: alpha, AlphaGrowth: 0.1})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.LPDAR.WeightedThroughput(), "lpdar_throughput")
			b.ReportMetric(res.Alpha, "alpha_used")
		})
	}
}

func alphaName(a float64) string {
	switch a {
	case 0.01:
		return "alpha_0.01"
	case 0.05:
		return "alpha_0.05"
	case 0.1:
		return "alpha_0.10"
	case 0.2:
		return "alpha_0.20"
	default:
		return "alpha_0.50"
	}
}

// BenchmarkAblationPathCount sweeps the allowed paths per job (the paper
// reports 4–8 suffices).
func BenchmarkAblationPathCount(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(pathName(k), func(b *testing.B) {
			inst := ablationInstance(b, k)
			var res *schedule.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = schedule.MaxThroughput(inst, schedule.Config{Alpha: 0.1, AlphaGrowth: 0.1})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.ZStar, "zstar")
			b.ReportMetric(res.LPDAR.WeightedThroughput(), "lpdar_throughput")
		})
	}
}

func pathName(k int) string {
	return map[int]string{1: "k1", 2: "k2", 4: "k4", 8: "k8"}[k]
}

// BenchmarkAblationGamma compares Quick-Finish cost shapes in SUB-RET.
func BenchmarkAblationGamma(b *testing.B) {
	g := netgraph.Ring(8, 2, 10)
	jobs := []job.Job{
		{ID: 1, Src: 0, Dst: 4, Size: 10, Start: 0, End: 4},
		{ID: 2, Src: 2, Dst: 6, Size: 10, Start: 0, End: 4},
		{ID: 3, Src: 5, Dst: 1, Size: 10, Start: 0, End: 5},
	}
	inst, err := schedule.BuildRETInstance(g, jobs, 1, 2, 5)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name  string
		gamma func(int) float64
	}{
		{"constant", func(int) float64 { return 1 }},
		{"linear", func(j int) float64 { return float64(j + 1) }},
		{"quadratic", func(j int) float64 { return float64((j + 1) * (j + 1)) }},
	} {
		b.Run(v.name, func(b *testing.B) {
			var res *schedule.RETResult
			for i := 0; i < b.N; i++ {
				res, err = schedule.SolveRET(inst, schedule.RETConfig{BMax: 5, Gamma: v.gamma})
				if err != nil {
					b.Fatal(err)
				}
			}
			avg, _ := res.LPDAR.AverageEndTime()
			b.ReportMetric(avg, "avg_end_slices")
			b.ReportMetric(res.B, "extension_b")
		})
	}
}

// BenchmarkAblationIntegerization compares the paper's LPD/LPDAR against
// the classical randomized-rounding baseline.
func BenchmarkAblationIntegerization(b *testing.B) {
	inst := ablationInstance(b, 4)
	res, err := schedule.MaxThroughput(inst, schedule.Config{Alpha: 0.1, AlphaGrowth: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	lpWT := res.LP.WeightedThroughput()
	b.Run("lpd", func(b *testing.B) {
		var wt float64
		for i := 0; i < b.N; i++ {
			wt = res.LP.Truncate().WeightedThroughput()
		}
		b.ReportMetric(wt/lpWT, "ratio_vs_lp")
	})
	b.Run("lpdar", func(b *testing.B) {
		var wt float64
		for i := 0; i < b.N; i++ {
			wt = schedule.AdjustRates(res.LP.Truncate(), schedule.VerbatimAdjust).WeightedThroughput()
		}
		b.ReportMetric(wt/lpWT, "ratio_vs_lp")
	})
	b.Run("randomized_round", func(b *testing.B) {
		var sum float64
		n := 0
		for i := 0; i < b.N; i++ {
			sum += schedule.RandomizedRound(res.LP, int64(i)).WeightedThroughput()
			n++
		}
		b.ReportMetric(sum/float64(n)/lpWT, "ratio_vs_lp")
	})
}

// BenchmarkFig4Tracing measures span tracing's enabled-path overhead on
// the Fig. 4 RET solve: the same overloaded instance searched with no
// tracer versus a hierarchical tracer streaming JSONL spans to
// io.Discard. `make bench-smoke` holds the on/off ratio to <= 5%; the
// disabled-path cost has its own tighter guard in
// BenchmarkSolveTelemetryOff.
func BenchmarkFig4Tracing(b *testing.B) {
	inst := retBenchInstance(b)
	base := schedule.RETConfig{BMax: 3, Solver: lp.Options{Pricing: lp.PartialDantzig}}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := schedule.SolveRET(inst, base)
			if err != nil {
				b.Fatal(err)
			}
			if res.BHat == 0 {
				b.Fatal("instance not overloaded; probe ladder unexercised")
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		cfg := base
		cfg.Solver.Tracer = telemetry.NewTracer(io.Discard).WithTrace(1)
		for i := 0; i < b.N; i++ {
			res, err := schedule.SolveRET(inst, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.BHat == 0 {
				b.Fatal("instance not overloaded; probe ladder unexercised")
			}
		}
	})
}

// BenchmarkSolveTelemetryOff guards the telemetry layer's disabled-path
// cost: lp.SolveWith with no Tracer must stay within noise of the seed
// solver (metric updates are a handful of atomic adds per solve, and the
// nil tracer short-circuits before any attribute allocation). Compare
// against BenchmarkSimplexSolve in internal/lp when chasing regressions.
func BenchmarkSolveTelemetryOff(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	model := lp.NewModel("bench", lp.Maximize)
	vars := make([]lp.VarID, 200)
	for j := range vars {
		vars[j] = model.AddVar("x", 0, float64(1+rng.Intn(9)), rng.Float64()*10-2)
	}
	for i := 0; i < 120; i++ {
		r := model.AddRow("r", lp.LE, float64(5+rng.Intn(50)))
		for j := range vars {
			if rng.Float64() < 0.3 {
				model.AddTerm(r, vars[j], rng.Float64()*4)
			}
		}
	}
	b.ResetTimer()
	var iters int
	for i := 0; i < b.N; i++ {
		sol, err := model.SolveWith(lp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != lp.Optimal {
			b.Fatalf("status %v", sol.Status)
		}
		iters = sol.Iters
	}
	b.ReportMetric(float64(iters), "simplex_iters")
}

// BenchmarkAblationPricing compares the simplex pricing rules on the
// stage-1 LP.
func BenchmarkAblationPricing(b *testing.B) {
	inst := ablationInstance(b, 4)
	for _, v := range []struct {
		name string
		rule lp.Pricing
	}{
		{"dantzig", lp.Dantzig},
		{"partial_dantzig", lp.PartialDantzig},
		{"bland", lp.Bland},
	} {
		b.Run(v.name, func(b *testing.B) {
			var s1 *schedule.Stage1Result
			var err error
			for i := 0; i < b.N; i++ {
				s1, err = schedule.SolveStage1(inst, lp.Options{Pricing: v.rule})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(s1.Iters), "simplex_iters")
			b.ReportMetric(s1.ZStar, "zstar")
		})
	}
}

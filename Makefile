# Developer entry points. `make check` is the gate run before sending a
# change: vet, build, and the full test suite under the race detector.

GO ?= go

.PHONY: check vet build test race race-serve bench bench-smoke bench-telemetry clean

check: vet build race-serve race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race gate for the concurrent serving stack: the HTTP daemon's
# single-writer discipline and the controller it serializes. Fast subset
# run before the full race suite.
race-serve:
	$(GO) test -race ./internal/server/... ./internal/controller/...

# Full benchmark harness at quick scale (minutes).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Benchmark smoke: one iteration of the telemetry-off guard and the
# warm-vs-cold RET comparison, so the warm-start path is exercised (and
# kept compiling) on every PR without paying for a full bench run.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkSolveTelemetryOff$$|BenchmarkRETWarmVsCold' -benchtime 1x .

# Guard for the telemetry layer's disabled-path cost: lp.SolveWith with
# no tracer attached must stay within noise (<2%) of the seed solver.
bench-telemetry:
	$(GO) test -run xxx -bench SolveTelemetryOff -benchtime 20x -count 3 .

clean:
	$(GO) clean ./...

# Developer entry points. `make check` is the gate run before sending a
# change: vet, build, and the full test suite under the race detector.

GO ?= go

.PHONY: check vet build test race bench bench-telemetry clean

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark harness at quick scale (minutes).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Guard for the telemetry layer's disabled-path cost: lp.SolveWith with
# no tracer attached must stay within noise (<2%) of the seed solver.
bench-telemetry:
	$(GO) test -run xxx -bench SolveTelemetryOff -benchtime 20x -count 3 .

clean:
	$(GO) clean ./...

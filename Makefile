# Developer entry points. `make check` is the gate run before sending a
# change: vet, build, and the full test suite under the race detector.

GO ?= go

.PHONY: check vet build test race race-serve cluster-test bench bench-smoke bench-admission bench-ret bench-scale bench-telemetry bench-trace-guard clean

check: vet build race-serve race cluster-test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race gate for the concurrent serving stack: the HTTP daemon's
# single-writer discipline and the controller it serializes. Fast subset
# run before the full race suite.
race-serve:
	$(GO) test -race ./internal/server/... ./internal/controller/...

# HA failover acceptance at process scale: three real daemons on local
# ports, SIGKILL of the leader, follower takeover with byte-identical
# replayed state, a post-failover write, and a replication-metric scrape.
# (The in-process failover/fencing/soak tests run in the normal race
# suite; this target adds the real-process, real-signal layer.)
cluster-test:
	WAVESCHED_CLUSTER_E2E=1 $(GO) test ./cmd/wavesched -run TestClusterProcessE2E -count=1 -v

# Full benchmark harness at quick scale (minutes).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Benchmark smoke: one iteration of the telemetry-off guard, the
# warm-vs-cold RET comparison, and the decomposition speedup, so those
# paths are exercised (and kept compiling) on every PR without paying for
# a full bench run. The later steps regenerate Fig. 3 (gated ±20% against
# BENCH_04.json), the Fig. 4 RET sweep (gated ±10% against BENCH_09.json,
# which also pins fig4 lp_ms at the certificate-pruned level), and the
# scale-tier proxy (gated ±10% against BENCH_10.json) at quick scale.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkSolveTelemetryOff$$|BenchmarkRETWarmVsCold|BenchmarkRETDecomposition' -benchtime 1x .
	$(GO) run ./cmd/benchfig -quick -fig 3 -json /tmp/benchsmoke.json -baseline BENCH_04.json -max-regress 20
	$(MAKE) bench-admission
	$(MAKE) bench-ret
	$(MAKE) bench-scale
	$(MAKE) bench-trace-guard
	$(MAKE) bench-cluster-guard

# RET search-speed gate: regenerate the Fig. 4 sweep at quick scale under
# the probe-economy lens and fail if lp_ms or wall time regressed more
# than 10% against the committed BENCH_09.json (the certificate-pruned
# search baseline; the lp_ms guard is direction-aware — only slowdowns
# fail, speedups just move the next committed baseline).
bench-ret:
	$(GO) run ./cmd/benchfig -quick -fig ret -json /tmp/benchret.json -baseline BENCH_09.json -max-regress 10

# Scale-tier gate: the quick proxy of the 400/1000-node sweep (K=8
# enumeration vs column generation), gated ±10% against the committed
# BENCH_10.json. lp_ms here is the column-generation arm's wall time, so
# the guard is direction-aware: only a colgen slowdown fails, while the
# enumeration baseline getting slower cannot mask one.
bench-scale:
	$(GO) run ./cmd/benchfig -quick -fig scale -json /tmp/benchscale.json -baseline BENCH_10.json -max-regress 10

# Admission-subsystem sustained-load smoke: 5000 durable submissions
# through the batched intake path vs the per-request mutex path, plus the
# incremental re-plan timing. Fails if batched intake throughput drops
# more than 10% against the committed BENCH_08.json baseline.
bench-admission:
	$(GO) run ./cmd/benchfig -quick -fig admission -json /tmp/benchadmission.json -baseline BENCH_08.json -max-regress 10

# Tracing-overhead guard: the Fig. 4 RET solve with JSONL span tracing
# enabled must stay within 5% of the tracing-off path (the per-span work
# is one buffered JSON encode; the probe LP dominates).
bench-trace-guard:
	$(GO) test -run xxx -bench 'BenchmarkFig4Tracing' -benchtime 10x . | awk ' \
		/BenchmarkFig4Tracing\/off/ {off=$$3} \
		/BenchmarkFig4Tracing\/on/ {on=$$3} \
		{print} \
		END { \
			if (off == "" || on == "") { print "bench-trace-guard: missing benchmark output"; exit 1 } \
			ratio = on / off; \
			printf "bench-trace-guard: tracing overhead %+.1f%% (on %s ns/op vs off %s ns/op)\n", (ratio-1)*100, on, off; \
			if (ratio > 1.05) { print "bench-trace-guard: FAIL, tracing overhead exceeds 5%"; exit 1 } \
		}'

# Guard for the telemetry layer's disabled-path cost: lp.SolveWith with
# no tracer attached must stay within noise (<2%) of the seed solver.
bench-telemetry:
	$(GO) test -run xxx -bench SolveTelemetryOff -benchtime 20x -count 3 .

# No-cluster overhead guard: the HA hooks on the serving write path (one
# nil interface check + an atomic leader load) must cost ≤2% when
# clustering is off. Min-of-5 on each side suppresses scheduler noise.
bench-cluster-guard:
	$(GO) test -run xxx -bench 'BenchmarkClusterHooks' -benchtime 10000x -count 5 ./internal/server | awk ' \
		/BenchmarkClusterHooks\/off/ { if (off == "" || $$3 < off) off = $$3 } \
		/BenchmarkClusterHooks\/on/  { if (on == ""  || $$3 < on)  on = $$3 } \
		{print} \
		END { \
			if (off == "" || on == "") { print "bench-cluster-guard: missing benchmark output"; exit 1 } \
			ratio = on / off; \
			printf "bench-cluster-guard: cluster-hook overhead %+.1f%% (on %s ns/op vs off %s ns/op)\n", (ratio-1)*100, on, off; \
			if (ratio > 1.02) { print "bench-cluster-guard: FAIL, no-cluster path overhead exceeds 2%"; exit 1 } \
		}'

clean:
	$(GO) clean ./...
